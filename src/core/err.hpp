// Elastic Round Robin (ERR) — the paper's contribution (Sec. 3, Fig. 1).
//
// ERR serves active flows in round-robin order.  In each round a flow gets
// an *allowance* A_i(r) = 1 + MaxSC(r-1) - SC_i(r-1) and keeps starting new
// packets while its transmitted total is below the allowance.  Because the
// last packet always completes (wormhole packets cannot be preempted), a
// flow may overshoot; the overshoot is recorded in its Surplus Count
// SC_i(r) = Sent_i(r) - A_i(r) and repaid in the next round.  Crucially,
// the decision to start a packet never consults the packet's length, which
// is exactly the constraint wormhole switching imposes.
//
// The algorithm is split in two layers:
//   * ErrPolicy — the pure ERR state machine over service opportunities.
//     It is agnostic to what a "unit of service" is, so the standalone
//     scheduler charges flits while the wormhole switch allocator charges
//     cycles of output occupancy (Sec. 1: "references to the length of the
//     packet ... may be replaced by length of time it takes to dequeue").
//   * ErrScheduler — plugs ErrPolicy into the flit-pull Scheduler frame.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

#include "common/types.hpp"
#include "core/flow_state_pool.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

struct ErrConfig {
  std::size_t num_flows = 0;

  /// The IPDPS-2000 pseudo-code keeps PreviousMaxSC and the round-robin
  /// visit count across periods where every flow goes idle, which lets a
  /// stale MaxSC inflate the first allowances after the idle gap.  Setting
  /// this clears all round state whenever the ActiveList empties.  Default
  /// is the paper-faithful behaviour.  (Ablation bench A2.)
  bool reset_on_idle = false;
};

/// One completed service opportunity, for tracing, golden tests
/// (reproduces the quantities annotated in the paper's Fig. 3) and the
/// runtime invariant auditor (src/validate), which needs enough context to
/// re-derive the allowance arithmetic and the paper's bounds externally.
struct ErrOpportunity {
  std::size_t round = 0;  // 1-based
  FlowId flow;
  double weight = 1.0;          // the flow's weight when it was served
  double allowance = 0.0;
  double sent = 0.0;
  double surplus_count = 0.0;   // after the reset-to-0-if-idle rule
  double max_sc_so_far = 0.0;   // running MaxSC of the round
  double previous_max_sc = 0.0; // MaxSC snapshot the allowance used
  double max_charge = 0.0;      // largest single charge() this opportunity
  std::size_t active_after = 0; // active flows once this opportunity ended
  bool deactivated = false;     // flow drained and left the ActiveList
};

class ErrPolicy {
 public:
  explicit ErrPolicy(const ErrConfig& config);

  /// Weighted ERR: A_i(r) = w_i * (1 + MaxSC(r-1)) - SC_i(r-1).  With all
  /// weights 1 this is exactly the paper's Eq. (2).  Weights must be >= 1
  /// (normalize so the smallest weight is 1); this keeps every allowance
  /// positive, the weighted analogue of Lemma 1.
  void set_weight(FlowId flow, double weight);

  /// The flow's queue went from empty to nonempty: append to the
  /// ActiveList tail with SC reset to 0 (the paper's Enqueue routine).
  void flow_activated(FlowId flow);

  [[nodiscard]] bool has_active_flows() const { return active_count_ > 0; }

  /// Starts the next service opportunity: handles round bookkeeping
  /// (PreviousMaxSC / RoundRobinVisitCount / MaxSC), pops the ActiveList
  /// head and computes its allowance.  Requires has_active_flows().
  FlowId begin_opportunity();

  /// True while the current flow may begin transmitting another packet
  /// (Sent < Allowance) — the do/while condition in Fig. 1.
  [[nodiscard]] bool may_continue() const { return sent_ < allowance_; }

  /// Accounts `units` of service consumed by one completed packet (flits
  /// in the standalone model; output-busy cycles in the wormhole model).
  void charge(double units);

  /// Finishes the opportunity: computes SC, folds it into MaxSC, and
  /// either re-appends the flow (still backlogged) or deactivates it.
  void end_opportunity(bool still_backlogged);

  /// --- Introspection (tests, traces, the Fig. 3 example) --------------
  [[nodiscard]] bool in_opportunity() const { return in_opportunity_; }
  [[nodiscard]] FlowId current_flow() const { return current_; }
  [[nodiscard]] double allowance() const { return allowance_; }
  [[nodiscard]] double sent() const { return sent_; }
  [[nodiscard]] double surplus_count(FlowId flow) const {
    return pool_.sc(flow.index());
  }
  [[nodiscard]] double weight(FlowId flow) const {
    return pool_.weight(flow.index());
  }
  [[nodiscard]] double max_sc() const { return max_sc_; }
  [[nodiscard]] double previous_max_sc() const { return previous_max_sc_; }
  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] std::size_t active_flow_count() const { return active_count_; }
  [[nodiscard]] std::size_t round_robin_visit_count() const {
    return round_robin_visit_count_;
  }

  /// Invoked at the end of every opportunity with its record.
  void set_opportunity_listener(std::function<void(const ErrOpportunity&)> fn) {
    listener_ = std::move(fn);
  }

  /// Checkpoint/restore.  Serializes every flow's SC and weight, the
  /// ActiveList as a flow-id sequence (rebuilt on restore), the round
  /// bookkeeping, and — because wormhole opportunities span many cycles —
  /// the mid-opportunity fields (current flow, allowance, sent).  The
  /// listener is runtime wiring and is not part of the snapshot.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  // Per-flow state (SC, weight, activation links) lives in SoA pool rows
  // — an idle flow costs two doubles, one link and one membership bit.
  FlowStatePool pool_;
  std::size_t active_count_ = 0;  // flows in list + the one in service
  std::size_t round_robin_visit_count_ = 0;
  double max_sc_ = 0.0;
  double previous_max_sc_ = 0.0;
  std::size_t round_ = 0;
  bool reset_on_idle_ = false;

  bool in_opportunity_ = false;
  FlowId current_;
  double allowance_ = 0.0;
  double sent_ = 0.0;
  double max_charge_ = 0.0;  // largest single charge() of the opportunity

  std::function<void(const ErrOpportunity&)> listener_;
};

/// ERR in the flit-pull scheduler frame (standalone experiments: Figs. 4-6).
class ErrScheduler final : public Scheduler {
 public:
  explicit ErrScheduler(const ErrConfig& config);

  [[nodiscard]] std::string_view name() const override { return "ERR"; }
  void set_weight(FlowId flow, double weight) override;

  [[nodiscard]] ErrPolicy& policy() { return policy_; }
  [[nodiscard]] const ErrPolicy& policy() const { return policy_; }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  ErrPolicy policy_;
};

}  // namespace wormsched::core
