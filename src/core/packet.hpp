// Packet and flit-event types for the paper's scheduling abstraction
// (Sec. 1): n flows, each with a FIFO queue of packets; a scheduler
// dequeues packets flit by flit onto one output resource.
#pragma once

#include "common/types.hpp"

namespace wormsched::core {

/// One packet in a flow queue.  `length` is measured in flits; a scheduler
/// that honours the wormhole constraint must not read it before the tail
/// flit has been transmitted (enforced by the Scheduler API, which only
/// exposes head-packet lengths through an explicit a-priori-length oracle).
struct Packet {
  PacketId id;
  FlowId flow;
  Flits length = 0;
  Cycle arrival = 0;

  // Filled in by the scheduler as service progresses.
  Cycle first_service = kCycleMax;
  Cycle departure = kCycleMax;
};

/// One transmitted flit, as observed at the output of a scheduler.
struct FlitEvent {
  FlowId flow;
  PacketId packet;
  /// 0-based position of this flit within its packet.
  Flits index = 0;
  bool is_head = false;
  bool is_tail = false;
};

}  // namespace wormsched::core
