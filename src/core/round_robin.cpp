#include "core/round_robin.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

ActiveFlowRing::ActiveFlowRing(std::size_t num_flows) : fifo_(num_flows) {}

void ActiveFlowRing::activate(FlowId flow) {
  WS_CHECK_MSG(!fifo_.contains(static_cast<std::uint32_t>(flow.index())),
               "activate of an already-active flow");
  fifo_.push_back(static_cast<std::uint32_t>(flow.index()));
}

FlowId ActiveFlowRing::take_next() {
  WS_CHECK(!fifo_.empty());
  return FlowId(fifo_.pop_front());
}

bool ActiveFlowRing::contains(FlowId flow) const {
  return fifo_.contains(static_cast<std::uint32_t>(flow.index()));
}

void ActiveFlowRing::save(SnapshotWriter& w) const { fifo_.save(w); }

void ActiveFlowRing::restore(SnapshotReader& r) {
  fifo_.restore(r, "round-robin ring");
}

PbrrScheduler::PbrrScheduler(std::size_t num_flows)
    : Scheduler(num_flows), ring_(num_flows) {}

void PbrrScheduler::on_flow_backlogged(FlowId flow) {
  // The serving flow is outside the ring while its packet streams; its
  // queue cannot be empty then, so no guard is needed here.
  ring_.activate(flow);
}

FlowId PbrrScheduler::select_next_flow(Cycle) {
  serving_ = ring_.take_next();
  return serving_;
}

void PbrrScheduler::on_packet_complete(FlowId flow, Flits, //
                                       bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  if (!queue_now_empty) ring_.activate(flow);
  serving_ = FlowId::invalid();
}

void PbrrScheduler::save_discipline(SnapshotWriter& w) const {
  ring_.save(w);
  w.u32(serving_.value());
}

void PbrrScheduler::restore_discipline(SnapshotReader& r) {
  ring_.restore(r);
  serving_ = FlowId{r.u32()};
}

FbrrScheduler::FbrrScheduler(std::size_t num_flows)
    : Scheduler(num_flows), ring_(num_flows) {}

void FbrrScheduler::on_flow_backlogged(FlowId flow) { ring_.activate(flow); }

std::optional<FlitEvent> FbrrScheduler::pull_flit_impl(Cycle now) {
  const FlowId flow = ring_.take_next();
  const EmitResult r = emit_flit_from(now, flow);
  // One flit per visit: go back to the tail unless the flow just drained.
  const bool still_backlogged = !r.packet_completed || !r.queue_now_empty;
  if (still_backlogged) ring_.activate(flow);
  return r.flit;
}

FlowId FbrrScheduler::select_next_flow(Cycle) {
  WS_CHECK_MSG(false, "FBRR overrides pull_flit_impl");
  return FlowId::invalid();
}

void FbrrScheduler::on_packet_complete(FlowId, Flits, bool) {
  WS_CHECK_MSG(false, "FBRR overrides pull_flit_impl");
}

void FbrrScheduler::save_discipline(SnapshotWriter& w) const { ring_.save(w); }

void FbrrScheduler::restore_discipline(SnapshotReader& r) { ring_.restore(r); }

}  // namespace wormsched::core
