// Weighted Round Robin (WRR) — the classic packet-count round robin.
//
// Each visit serves ceil(weight_i) whole packets from the flow.  WRR is
// wormhole-deployable (packet counts need no length knowledge) and is the
// natural weighted generalization of the paper's PBRR baseline — and it
// inherits PBRR's flaw: flows sending longer packets get proportionally
// more bandwidth, so its relative fairness measure is unbounded in bytes
// even though it is perfectly fair in packets.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/round_robin.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

class WrrScheduler final : public Scheduler {
 public:
  explicit WrrScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "WRR"; }
  void set_weight(FlowId flow, double weight) override;

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  ActiveFlowRing ring_;
  std::vector<std::uint32_t> packets_per_visit_;
  FlowId serving_ = FlowId::invalid();
  std::uint32_t remaining_this_visit_ = 0;
};

}  // namespace wormsched::core
