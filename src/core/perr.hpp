// Prioritized Elastic Round Robin (PERR) — the priority-class extension
// the ERR line of work develops after the IPDPS paper (Kanhere & Sethu's
// follow-up on scheduling with delay classes).
//
// Flows are assigned to strict priority classes; each class runs its own
// ERR state machine over the flows it contains.  At every packet boundary
// the scheduler serves the highest-priority class with a backlogged flow,
// so latency-sensitive classes preempt (at packet granularity — wormhole
// packets are never interleaved) while fairness *within* each class keeps
// all of ERR's guarantees.  Work complexity stays O(1) in the number of
// flows (the class scan is O(#classes), a small constant).
//
// This is an extension beyond the paper's evaluation; bench
// bench_ablation_weighted and the unit tests exercise it.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/err.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

struct PerrConfig {
  std::size_t num_flows = 0;
  /// priority_of[flow] = class index; 0 is the highest priority.  Empty
  /// puts every flow in class 0 (plain ERR).
  std::vector<std::uint32_t> priority_of;
  bool reset_on_idle = false;
};

class PerrScheduler final : public Scheduler {
 public:
  explicit PerrScheduler(const PerrConfig& config);

  [[nodiscard]] std::string_view name() const override { return "PERR"; }
  void set_weight(FlowId flow, double weight) override;

  [[nodiscard]] std::size_t num_classes() const { return classes_.size(); }
  [[nodiscard]] std::uint32_t priority_of(FlowId flow) const {
    return priority_of_[flow.index()];
  }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  struct PriorityClass {
    std::unique_ptr<ErrPolicy> policy;
  };

  [[nodiscard]] ErrPolicy& policy_of(FlowId flow) {
    return *classes_[priority_of_[flow.index()]].policy;
  }

  std::vector<std::uint32_t> priority_of_;
  std::vector<PriorityClass> classes_;
};

}  // namespace wormsched::core
