#include "core/perr.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

PerrScheduler::PerrScheduler(const PerrConfig& config)
    : Scheduler(config.num_flows), priority_of_(config.priority_of) {
  if (priority_of_.empty()) priority_of_.assign(config.num_flows, 0);
  WS_CHECK_MSG(priority_of_.size() == config.num_flows,
               "priority_of must have one entry per flow");
  std::uint32_t num_classes = 0;
  for (const auto p : priority_of_) num_classes = std::max(num_classes, p + 1);
  classes_.resize(num_classes);
  for (auto& cls : classes_) {
    // Each class's ErrPolicy is sized for all flows: flow ids are global,
    // and a policy only ever touches the flows assigned to its class.
    cls.policy = std::make_unique<ErrPolicy>(
        ErrConfig{config.num_flows, config.reset_on_idle});
  }
}

void PerrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  policy_of(flow).set_weight(flow, weight);
}

void PerrScheduler::on_flow_backlogged(FlowId flow) {
  ErrPolicy& policy = policy_of(flow);
  if (policy.in_opportunity() && policy.current_flow() == flow) return;
  policy.flow_activated(flow);
}

FlowId PerrScheduler::select_next_flow(Cycle) {
  // A class whose opportunity is still open resumes it; otherwise the
  // highest-priority class with active flows wins.  An open lower-class
  // opportunity does NOT shield it from preemption: if a higher class
  // became backlogged since, that class is served first and the lower
  // opportunity resumes afterwards (its allowance state is untouched —
  // the elastic accounting makes this safe).
  for (auto& cls : classes_) {
    ErrPolicy& policy = *cls.policy;
    if (policy.in_opportunity()) {
      // Opportunity left open => continuation legal (see
      // on_packet_complete), and the flow is still backlogged.
      return policy.current_flow();
    }
    if (policy.has_active_flows()) return policy.begin_opportunity();
  }
  WS_CHECK_MSG(false, "select with no backlogged flow");
  return FlowId::invalid();
}

void PerrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                       bool queue_now_empty) {
  ErrPolicy& policy = policy_of(flow);
  WS_CHECK(policy.in_opportunity() && policy.current_flow() == flow);
  policy.charge(static_cast<double>(observed_length));
  if (queue_now_empty || !policy.may_continue())
    policy.end_opportunity(!queue_now_empty);
}

void PerrScheduler::save_discipline(SnapshotWriter& w) const {
  w.u64(priority_of_.size());
  for (const std::uint32_t p : priority_of_) w.u32(p);
  w.u64(classes_.size());
  for (const PriorityClass& cls : classes_) cls.policy->save(w);
}

void PerrScheduler::restore_discipline(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != priority_of_.size())
    throw SnapshotError("PERR snapshot priority map size mismatch");
  for (std::uint32_t& p : priority_of_) p = r.u32();
  for (const std::uint32_t p : priority_of_)
    if (p >= classes_.size())
      throw SnapshotError("PERR snapshot priority map exceeds class count");
  const std::uint64_t classes = r.u64();
  if (classes != classes_.size())
    throw SnapshotError("PERR snapshot has " + std::to_string(classes) +
                        " classes, this scheduler has " +
                        std::to_string(classes_.size()));
  for (PriorityClass& cls : classes_) cls.policy->restore(r);
}

}  // namespace wormsched::core
