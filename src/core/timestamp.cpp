#include "core/timestamp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

TimestampScheduler::TimestampScheduler(std::size_t num_flows)
    : Scheduler(num_flows), in_heap_(num_flows) {}

void TimestampScheduler::push_candidate(FlowId flow) {
  WS_CHECK(!in_heap_.test(flow.index()));
  WS_CHECK(flow_backlogged(flow));
  heap_.push(HeapEntry{queue_head_stamp(flow), next_sequence_++, flow});
  in_heap_.set(flow.index());
}

void TimestampScheduler::on_packet_enqueued(Cycle now, FlowId flow,
                                            Flits length) {
  WS_CHECK_MSG(length > 0, "timestamp disciplines need a-priori lengths");
  // This hook runs after the base pushed the packet, so the queue holds
  // exactly one packet iff the flow was idle.
  const bool was_empty = queue_length(flow) == 1;
  // Stamps are per-flow monotone (each rule takes max with the flow's last
  // finish), so FIFO order within the flow equals stamp order.
  queue_set_tail_stamp(flow, stamp(now, flow, length));
  if (was_empty) {
    ++backlogged_flows_;
    if (serving_ != flow) push_candidate(flow);
  }
}

FlowId TimestampScheduler::select_next_flow(Cycle) {
  WS_CHECK(!heap_.empty());
  const HeapEntry entry = heap_.top();
  heap_.pop();
  in_heap_.clear(entry.flow.index());
  serving_ = entry.flow;
  on_service_start(entry.flow, entry.tag);
  return entry.flow;
}

void TimestampScheduler::on_packet_complete(FlowId flow, Flits,
                                            bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  serving_ = FlowId::invalid();
  // The served packet's stamp was recycled with its queue node; the next
  // head's stamp (if any) is already in place.
  if (!queue_now_empty) {
    push_candidate(flow);
  } else {
    WS_CHECK(backlogged_flows_ > 0);
    --backlogged_flows_;
    if (backlogged_flows_ == 0) on_all_idle();
  }
}

void TimestampScheduler::save_discipline(SnapshotWriter& w) const {
  // Legacy v1 layout: the stamps as per-flow sequences (they mirror the
  // packet queues exactly), then one membership bool per flow.
  w.u64(num_flows());
  for (std::size_t f = 0; f < num_flows(); ++f) {
    const FlowId flow(static_cast<FlowId::rep_type>(f));
    w.u64(queue_length(flow));
    queue_for_each_stamp(flow, [&](double x) { w.f64(x); });
  }
  for (std::size_t f = 0; f < num_flows(); ++f) w.b(in_heap_.test(f));
  auto drain = heap_;  // copy; pops in (tag, sequence) order
  w.u64(drain.size());
  while (!drain.empty()) {
    const HeapEntry& e = drain.top();
    w.f64(e.tag);
    w.u64(e.sequence);
    w.u32(e.flow.value());
    drain.pop();
  }
  w.u64(next_sequence_);
  w.u64(backlogged_flows_);
  w.u32(serving_.value());
  save_stamping(w);
}

void TimestampScheduler::restore_discipline(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != num_flows())
    throw SnapshotError("timestamp snapshot per-flow array size mismatch");
  // The base section restored the packet queues first; the stamps write
  // straight back into the queue nodes, so the counts must agree.
  for (std::size_t f = 0; f < num_flows(); ++f) {
    const FlowId flow(static_cast<FlowId::rep_type>(f));
    const std::uint64_t count = r.u64();
    if (count != queue_length(flow))
      throw SnapshotError(
          "timestamp snapshot stamp count disagrees with the packet queue");
    queue_assign_stamps(flow, count, [&] { return r.f64(); });
  }
  in_heap_.clear_all();
  for (std::size_t f = 0; f < num_flows(); ++f)
    if (r.b()) in_heap_.set(f);
  heap_ = {};
  const std::uint64_t entries = r.u64();
  if (entries > num_flows())
    throw SnapshotError("timestamp snapshot heap larger than the flow table");
  for (std::uint64_t i = 0; i < entries; ++i) {
    HeapEntry e;
    e.tag = r.f64();
    e.sequence = r.u64();
    e.flow = FlowId{r.u32()};
    if (e.flow.index() >= num_flows())
      throw SnapshotError("timestamp snapshot heap names an invalid flow");
    heap_.push(e);
  }
  next_sequence_ = r.u64();
  backlogged_flows_ = r.u64();
  serving_ = FlowId{r.u32()};
  restore_stamping(r);
}

ScfqScheduler::ScfqScheduler(std::size_t num_flows)
    : TimestampScheduler(num_flows), last_finish_(num_flows, 0.0) {}

double ScfqScheduler::stamp(Cycle, FlowId flow, Flits length) {
  const double finish =
      std::max(virtual_time_, last_finish_[flow.index()]) +
      static_cast<double>(length) / weight(flow);
  last_finish_[flow.index()] = finish;
  return finish;
}

void ScfqScheduler::on_service_start(FlowId, double tag) {
  virtual_time_ = tag;
}

void ScfqScheduler::on_all_idle() {
  // Golestani's reset rule: when the system drains, virtual time and all
  // flow histories restart from zero.
  virtual_time_ = 0.0;
  for (auto& f : last_finish_) f = 0.0;
}

void ScfqScheduler::save_stamping(SnapshotWriter& w) const {
  w.f64(virtual_time_);
  save_doubles(w, last_finish_);
}

void ScfqScheduler::restore_stamping(SnapshotReader& r) {
  virtual_time_ = r.f64();
  restore_doubles(r, last_finish_);
  if (last_finish_.size() != num_flows())
    throw SnapshotError("SCFQ snapshot per-flow array size mismatch");
}

StfqScheduler::StfqScheduler(std::size_t num_flows)
    : TimestampScheduler(num_flows), last_finish_(num_flows, 0.0) {}

double StfqScheduler::stamp(Cycle, FlowId flow, Flits length) {
  // Serve by virtual start time: S = max(v, F_prev); the finish
  // F = S + L/w only updates the flow's own history.
  const double start = std::max(virtual_time_, last_finish_[flow.index()]);
  last_finish_[flow.index()] =
      start + static_cast<double>(length) / weight(flow);
  return start;
}

void StfqScheduler::on_service_start(FlowId, double tag) {
  virtual_time_ = tag;
}

void StfqScheduler::on_all_idle() {
  virtual_time_ = 0.0;
  for (auto& f : last_finish_) f = 0.0;
}

void StfqScheduler::save_stamping(SnapshotWriter& w) const {
  w.f64(virtual_time_);
  save_doubles(w, last_finish_);
}

void StfqScheduler::restore_stamping(SnapshotReader& r) {
  virtual_time_ = r.f64();
  restore_doubles(r, last_finish_);
  if (last_finish_.size() != num_flows())
    throw SnapshotError("STFQ snapshot per-flow array size mismatch");
}

VirtualClockScheduler::VirtualClockScheduler(std::size_t num_flows)
    : TimestampScheduler(num_flows),
      aux_vc_(num_flows, 0.0),
      total_weight_(static_cast<double>(num_flows)) {}

void VirtualClockScheduler::set_weight(FlowId flow, double w) {
  total_weight_ += w - weight(flow);
  Scheduler::set_weight(flow, w);
}

double VirtualClockScheduler::rate(FlowId flow) const {
  return weight(flow) / total_weight_;
}

double VirtualClockScheduler::stamp(Cycle now, FlowId flow, Flits length) {
  // auxVC_i = max(real time, auxVC_i) + L / reserved rate (Zhang's rule):
  // the stamp a TDM system at the flow's reserved rate would assign.
  double& aux = aux_vc_[flow.index()];
  aux = std::max(static_cast<double>(now), aux) +
        static_cast<double>(length) / rate(flow);
  return aux;
}

void VirtualClockScheduler::save_stamping(SnapshotWriter& w) const {
  save_doubles(w, aux_vc_);
  w.f64(total_weight_);
}

void VirtualClockScheduler::restore_stamping(SnapshotReader& r) {
  restore_doubles(r, aux_vc_);
  if (aux_vc_.size() != num_flows())
    throw SnapshotError("VC snapshot per-flow array size mismatch");
  total_weight_ = r.f64();
}

}  // namespace wormsched::core
