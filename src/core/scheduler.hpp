// Scheduler framework.
//
// A Scheduler owns one FIFO packet queue per flow and serves one output
// resource that moves at most one flit per cycle (the paper's service
// model).  Concrete disciplines plug in by answering one question: *which
// flow transmits next, and for how long may it keep the output?*
//
// The framework enforces the wormhole constraint from Sec. 1 of the paper:
// a discipline's selection hooks run without access to packet lengths.
// The length of the packet in flight becomes visible to the discipline
// only when its tail flit is transmitted (`on_packet_complete`).
// Disciplines that fundamentally need lengths up front — DRR, the
// timestamp schedulers — must declare `requires_apriori_length()` and use
// the protected `head_packet_length()` oracle; the wormhole switch model
// refuses to instantiate such disciplines, which operationalizes the
// paper's claim that "DRR is not suitable for wormhole networks".
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/flow_state_pool.hpp"
#include "core/packet.hpp"

namespace wormsched {
class SnapshotReader;
class SnapshotWriter;
}  // namespace wormsched

namespace wormsched::core {

/// Receives notifications about scheduler activity; implemented by the
/// metrics layer (service logs, delay statistics).
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  virtual void on_packet_arrival(Cycle now, const Packet& packet) {
    (void)now;
    (void)packet;
  }
  virtual void on_flit(Cycle now, const FlitEvent& flit) {
    (void)now;
    (void)flit;
  }
  virtual void on_packet_departure(Cycle now, const Packet& packet) {
    (void)now;
    (void)packet;
  }
};

class Scheduler {
 public:
  explicit Scheduler(std::size_t num_flows);
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the discipline cannot decide without knowing packet lengths
  /// before service (and therefore cannot run in a wormhole switch).
  [[nodiscard]] virtual bool requires_apriori_length() const { return false; }

  /// Sets the (positive) weight of a flow.  Takes effect at the flow's
  /// next service opportunity.  Default weight is 1.
  virtual void set_weight(FlowId flow, double weight);

  /// Adds a packet to its flow's queue.  `packet.flow` must be valid and
  /// `packet.length` positive.
  void enqueue(Cycle now, Packet packet);

  /// Offers the scheduler one transmission slot.  Returns the flit sent,
  /// or nullopt when all queues are empty.
  std::optional<FlitEvent> pull_flit(Cycle now);

  [[nodiscard]] std::size_t num_flows() const { return queues_.num_flows(); }
  [[nodiscard]] bool idle() const { return backlog_flits_ == 0; }
  /// Total untransmitted flits across all queues.
  [[nodiscard]] Flits backlog_flits() const { return backlog_flits_; }
  /// Packets not yet fully transmitted in `flow`'s queue.
  [[nodiscard]] std::size_t queue_length(FlowId flow) const;

  /// At most one observer; not owned.  Pass nullptr to detach.
  void set_observer(SchedulerObserver* observer) { observer_ = observer; }

  /// Checkpoint/restore.  Serializes the queues, per-flow weights and
  /// in-flight latch, then the discipline's private state through the
  /// save_discipline/restore_discipline hooks.  restore_state() must be
  /// called on a freshly constructed scheduler of the same discipline and
  /// flow count (checked); the observer wiring is runtime state and is
  /// not part of the snapshot.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

 protected:
  /// Discipline-private checkpoint state.  The default saves nothing —
  /// correct only for genuinely stateless disciplines; every stateful
  /// discipline overrides both.
  virtual void save_discipline(SnapshotWriter& w) const { (void)w; }
  virtual void restore_discipline(SnapshotReader& r) { (void)r; }

  /// --- Discipline interface -------------------------------------------
  /// Called when a packet arrival makes flow `flow` go from idle to
  /// backlogged (its queue was empty and nothing of it was in flight).
  virtual void on_flow_backlogged(FlowId flow) = 0;

  /// Called for *every* packet arrival, after the queue push and after any
  /// on_flow_backlogged.  `length` is the packet's length in flits if the
  /// discipline declared requires_apriori_length(), and -1 otherwise —
  /// this is how the framework keeps wormhole-capable disciplines honest.
  virtual void on_packet_enqueued(Cycle now, FlowId flow, Flits length) {
    (void)now;
    (void)flow;
    (void)length;
  }

  /// Selects the flow whose head packet is served next.  Called only when
  /// at least one flow is backlogged and no packet is in flight.  The
  /// returned flow must be backlogged.
  virtual FlowId select_next_flow(Cycle now) = 0;

  /// Called when the in-flight packet's tail flit has been sent.
  /// `observed_length` is the now-revealed packet length in flits;
  /// `queue_now_empty` tells the discipline whether the flow stays
  /// backlogged.
  virtual void on_packet_complete(FlowId flow, Flits observed_length,
                                  bool queue_now_empty) = 0;

  /// FBRR overrides flit-granularity transmission entirely; the default
  /// latches onto select_next_flow()'s choice until the packet completes.
  virtual std::optional<FlitEvent> pull_flit_impl(Cycle now);

  /// --- Services available to disciplines ------------------------------
  [[nodiscard]] bool flow_backlogged(FlowId flow) const {
    return !queues_.empty(flow.index());
  }

  /// A-priori length oracle.  Only disciplines returning true from
  /// requires_apriori_length() may call this; enforced at runtime.
  [[nodiscard]] Flits head_packet_length(FlowId flow) const;

  [[nodiscard]] double weight(FlowId flow) const {
    return weights_[flow.index()];
  }

  struct EmitResult {
    FlitEvent flit;
    bool packet_completed = false;
    Flits observed_length = 0;
    bool queue_now_empty = false;
  };

  /// Transmits one flit from the head packet of `flow` (which must be
  /// backlogged), handling all arrival/departure/observer bookkeeping.
  /// Does NOT call on_packet_complete — callers route completion to their
  /// own bookkeeping.
  EmitResult emit_flit_from(Cycle now, FlowId flow);

  /// --- Per-packet stamp rows (timestamp disciplines) -------------------
  /// Queued packets carry a double stamp slot in the shared node pool;
  /// these pass-throughs keep the queues themselves private.
  [[nodiscard]] double queue_head_stamp(FlowId flow) const {
    return queues_.head_stamp(flow.index());
  }
  void queue_set_tail_stamp(FlowId flow, double s) {
    queues_.set_tail_stamp(flow.index(), s);
  }
  template <typename Fn>
  void queue_for_each_stamp(FlowId flow, Fn&& fn) const {
    queues_.for_each_stamp(flow.index(), fn);
  }
  template <typename Fn>
  void queue_assign_stamps(FlowId flow, std::size_t count, Fn&& next_value) {
    queues_.assign_stamps(flow.index(), count, next_value);
  }

 private:
  PacketQueuePool queues_;
  std::vector<double> weights_;
  std::vector<Flits> flits_sent_of_head_;  // progress into each head packet
  std::optional<FlowId> latched_flow_;     // packet in flight (default impl)
  Flits backlog_flits_ = 0;
  SchedulerObserver* observer_ = nullptr;
};

}  // namespace wormsched::core
