// WF²Q+ (Bennett & Zhang, INFOCOM 1996 / ToN 1997).
//
// An extension beyond the paper's evaluation: the best-known
// worst-case-fair timestamp discipline.  Like WFQ it serves by virtual
// finish time, but it only considers packets that are *eligible* — whose
// virtual start time has been reached by system virtual time — which
// prevents a flow from running arbitrarily ahead of its GPS service.  The
// WF²Q+ virtual time needs no fluid tracking:
//
//   V <- max(V + work done, min over backlogged flows of head start tag)
//
// Included as the strongest fairness baseline for the ablation benches; it
// still requires a-priori packet lengths, so it remains unusable in a
// wormhole switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

class Wf2qPlusScheduler final : public Scheduler {
 public:
  explicit Wf2qPlusScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "WF2Q+"; }
  [[nodiscard]] bool requires_apriori_length() const override { return true; }
  void set_weight(FlowId flow, double weight) override;

  [[nodiscard]] double virtual_time() const { return virtual_time_; }

 protected:
  void on_flow_backlogged(FlowId) override {}
  void on_packet_enqueued(Cycle now, FlowId flow, Flits length) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  struct FlowState {
    double last_finish = 0.0;   // F of the most recently finished head
    double head_start = 0.0;    // S of the current head packet
    double head_finish = 0.0;   // F of the current head packet
    std::uint64_t epoch = 0;    // invalidates stale heap entries
    bool has_head = false;
  };
  struct HeapEntry {
    double key;  // S for the waiting heap, F for the eligible heap
    std::uint64_t sequence;
    std::uint64_t epoch;
    FlowId flow;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.sequence > b.sequence;
    }
  };
  using Heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later>;

  /// Assigns start/finish tags to the new head packet of `flow` and files
  /// it in the waiting heap (eligibility is re-checked at selection time).
  void install_head(FlowId flow, Flits length);

  [[nodiscard]] bool entry_stale(const HeapEntry& e) const {
    return !flows_[e.flow.index()].has_head ||
           e.epoch != flows_[e.flow.index()].epoch;
  }
  void drop_stale(Heap& heap);

  /// Moves every waiting head with S <= V into the eligible heap.
  void promote_eligible();

  std::vector<FlowState> flows_;
  std::vector<RingBuffer<Flits>> pending_lengths_;
  Heap eligible_;  // keyed by virtual finish F
  Heap waiting_;   // keyed by virtual start S
  double virtual_time_ = 0.0;
  double pending_work_ = 0.0;  // real service since the last V update
  double total_weight_;
  std::uint64_t next_sequence_ = 0;
  FlowId serving_ = FlowId::invalid();
};

}  // namespace wormsched::core
