#include "core/srr.hpp"

#include "common/assert.hpp"

namespace wormsched::core {

SrrScheduler::SrrScheduler(const SrrConfig& config)
    : Scheduler(config.num_flows), flows_(config.num_flows) {
  WS_CHECK_MSG(config.quantum >= 1, "SRR quantum must be >= 1");
  for (std::size_t i = 0; i < config.num_flows; ++i) {
    flows_[i].id = FlowId(static_cast<FlowId::rep_type>(i));
    flows_[i].quantum = static_cast<double>(config.quantum);
  }
  base_quantum_ = static_cast<double>(config.quantum);
}

void SrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  flows_[flow.index()].quantum = weight * base_quantum_;
}

void SrrScheduler::on_flow_backlogged(FlowId flow) {
  if (in_opportunity_ && current_ == flow) return;
  FlowState& state = flows_[flow.index()];
  WS_CHECK(!decltype(active_list_)::is_linked(state));
  // A reactivating flow forfeits any leftover (positive or negative)
  // credit — the SRR analogue of DRR's deficit reset, which prevents an
  // idle flow from banking service.
  state.credit = 0.0;
  active_list_.push_back(state);
}

FlowId SrrScheduler::select_next_flow(Cycle) {
  if (in_opportunity_) return current_;
  // Visit flows in rotation, topping up credit.  A flow still in debt
  // from an earlier overshoot is skipped — a decision that, crucially,
  // needs no packet length (unlike DRR's head-fits-in-deficit test), so
  // SRR remains wormhole-deployable.  The loop terminates because every
  // skipped visit adds a positive quantum.
  for (;;) {
    WS_CHECK(!active_list_.empty());
    FlowState& state = active_list_.pop_front();
    state.credit += state.quantum;
    if (state.credit > 0.0) {
      in_opportunity_ = true;
      current_ = state.id;
      return state.id;
    }
    active_list_.push_back(state);
  }
}

void SrrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(in_opportunity_ && current_ == flow);
  FlowState& state = flows_[flow.index()];
  state.credit -= static_cast<double>(observed_length);
  const bool may_continue = state.credit > 0.0;
  if (queue_now_empty || !may_continue) {
    if (queue_now_empty) {
      state.credit = 0.0;
    } else {
      active_list_.push_back(state);
    }
    in_opportunity_ = false;
  }
}

}  // namespace wormsched::core
