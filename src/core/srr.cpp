#include "core/srr.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

SrrScheduler::SrrScheduler(const SrrConfig& config)
    : Scheduler(config.num_flows), flows_(config.num_flows) {
  WS_CHECK_MSG(config.quantum >= 1, "SRR quantum must be >= 1");
  for (std::size_t i = 0; i < config.num_flows; ++i) {
    flows_[i].id = FlowId(static_cast<FlowId::rep_type>(i));
    flows_[i].quantum = static_cast<double>(config.quantum);
  }
  base_quantum_ = static_cast<double>(config.quantum);
}

void SrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  flows_[flow.index()].quantum = weight * base_quantum_;
}

void SrrScheduler::on_flow_backlogged(FlowId flow) {
  if (in_opportunity_ && current_ == flow) return;
  FlowState& state = flows_[flow.index()];
  WS_CHECK(!decltype(active_list_)::is_linked(state));
  // A reactivating flow forfeits any leftover (positive or negative)
  // credit — the SRR analogue of DRR's deficit reset, which prevents an
  // idle flow from banking service.
  state.credit = 0.0;
  active_list_.push_back(state);
}

FlowId SrrScheduler::select_next_flow(Cycle) {
  if (in_opportunity_) return current_;
  // Visit flows in rotation, topping up credit.  A flow still in debt
  // from an earlier overshoot is skipped — a decision that, crucially,
  // needs no packet length (unlike DRR's head-fits-in-deficit test), so
  // SRR remains wormhole-deployable.  The loop terminates because every
  // skipped visit adds a positive quantum.
  for (;;) {
    WS_CHECK(!active_list_.empty());
    FlowState& state = active_list_.pop_front();
    state.credit += state.quantum;
    if (state.credit > 0.0) {
      in_opportunity_ = true;
      current_ = state.id;
      return state.id;
    }
    active_list_.push_back(state);
  }
}

void SrrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(in_opportunity_ && current_ == flow);
  FlowState& state = flows_[flow.index()];
  state.credit -= static_cast<double>(observed_length);
  const bool may_continue = state.credit > 0.0;
  if (queue_now_empty || !may_continue) {
    if (queue_now_empty) {
      state.credit = 0.0;
    } else {
      active_list_.push_back(state);
    }
    in_opportunity_ = false;
  }
}

void SrrScheduler::save_discipline(SnapshotWriter& w) const {
  w.u64(flows_.size());
  for (const FlowState& f : flows_) {
    w.f64(f.credit);
    w.f64(f.quantum);
  }
  w.u64(active_list_.size());
  for (const FlowState& f : active_list_) w.u32(f.id.value());
  w.f64(base_quantum_);
  w.b(in_opportunity_);
  w.u32(current_.value());
}

void SrrScheduler::restore_discipline(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != flows_.size())
    throw SnapshotError("SRR snapshot has " + std::to_string(n) +
                        " flows, this scheduler has " +
                        std::to_string(flows_.size()));
  for (FlowState& f : flows_) {
    f.credit = r.f64();
    f.quantum = r.f64();
  }
  active_list_.clear();
  const std::uint64_t linked = r.u64();
  if (linked > flows_.size())
    throw SnapshotError("SRR ActiveList longer than the flow table");
  for (std::uint64_t i = 0; i < linked; ++i) {
    const FlowId id{r.u32()};
    if (id.index() >= flows_.size())
      throw SnapshotError("SRR ActiveList names an out-of-range flow");
    FlowState& f = flows_[id.index()];
    if (decltype(active_list_)::is_linked(f))
      throw SnapshotError("SRR ActiveList names a flow twice");
    active_list_.push_back(f);
  }
  base_quantum_ = r.f64();
  in_opportunity_ = r.b();
  current_ = FlowId{r.u32()};
}

}  // namespace wormsched::core
