#include "core/srr.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

SrrScheduler::SrrScheduler(const SrrConfig& config)
    : Scheduler(config.num_flows),
      pool_(config.num_flows,
            /*initial_weight=*/static_cast<double>(config.quantum)) {
  WS_CHECK_MSG(config.quantum >= 1, "SRR quantum must be >= 1");
  base_quantum_ = static_cast<double>(config.quantum);
}

void SrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  pool_.set_weight(flow.index(), weight * base_quantum_);
}

void SrrScheduler::on_flow_backlogged(FlowId flow) {
  if (in_opportunity_ && current_ == flow) return;
  const auto i = static_cast<std::uint32_t>(flow.index());
  WS_CHECK(!pool_.active().contains(i));
  // A reactivating flow forfeits any leftover (positive or negative)
  // credit — the SRR analogue of DRR's deficit reset, which prevents an
  // idle flow from banking service.
  pool_.set_sc(i, 0.0);
  pool_.active().push_back(i);
}

FlowId SrrScheduler::select_next_flow(Cycle) {
  if (in_opportunity_) return current_;
  // Visit flows in rotation, topping up credit.  A flow still in debt
  // from an earlier overshoot is skipped — a decision that, crucially,
  // needs no packet length (unlike DRR's head-fits-in-deficit test), so
  // SRR remains wormhole-deployable.  The loop terminates because every
  // skipped visit adds a positive quantum.
  for (;;) {
    WS_CHECK(!pool_.active().empty());
    const std::uint32_t i = pool_.active().pop_front();
    pool_.set_sc(i, pool_.sc(i) + pool_.weight(i));
    if (pool_.sc(i) > 0.0) {
      in_opportunity_ = true;
      current_ = FlowId(i);
      return current_;
    }
    pool_.active().push_back(i);
  }
}

void SrrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(in_opportunity_ && current_ == flow);
  const auto i = static_cast<std::uint32_t>(flow.index());
  pool_.set_sc(i, pool_.sc(i) - static_cast<double>(observed_length));
  const bool may_continue = pool_.sc(i) > 0.0;
  if (queue_now_empty || !may_continue) {
    if (queue_now_empty) {
      pool_.set_sc(i, 0.0);
    } else {
      pool_.active().push_back(i);
    }
    in_opportunity_ = false;
  }
}

void SrrScheduler::save_discipline(SnapshotWriter& w) const {
  pool_.save_rows(w);
  pool_.active().save(w);
  w.f64(base_quantum_);
  w.b(in_opportunity_);
  w.u32(current_.value());
}

void SrrScheduler::restore_discipline(SnapshotReader& r) {
  pool_.restore_rows(r, "SRR");
  pool_.active().restore(r, "SRR ActiveList");
  base_quantum_ = r.f64();
  in_opportunity_ = r.b();
  current_ = FlowId{r.u32()};
}

}  // namespace wormsched::core
