// Multi-tenant trace synthesis for flow-scaling experiments.
//
// The WorkloadSpec path (workload.hpp) materialises a per-flow arrival
// process and walks every flow every cycle — exactly right for the
// paper's handful of flows, quadratically wrong at a million.  This
// synthesizer works per *arrival* instead: each cycle it draws Poisson
// arrival counts for the elephant and mice classes and assigns each
// arrival to a flow, so cost is O(arrivals), independent of how many
// flows merely exist.
//
// Flow roles (elephant vs mouse) and tenant-churn eligibility come from
// a seed-keyed hash of the flow id, not from per-flow state, so a
// million-flow spec costs two id vectors and nothing per cycle.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "traffic/workload.hpp"

namespace wormsched::traffic {

struct SynthSpec {
  std::size_t num_flows = 0;
  /// Injection covers cycles [0, horizon).
  Cycle horizon = 0;
  /// Aggregate offered load in flits/cycle (output capacity is 1).
  double load = 0.9;

  /// Elephant/mice split: `elephant_fraction` of flows are elephants and
  /// together carry `elephant_share` of the load in long packets.  Either
  /// class may be empty; its share folds into the other.
  double elephant_fraction = 0.1;
  double elephant_share = 0.5;
  Flits mice_min_length = 1;
  Flits mice_max_length = 16;
  Flits elephant_min_length = 32;
  Flits elephant_max_length = 256;

  /// Tenant churn: every `churn_epoch` cycles the set of eligible flows
  /// reshuffles; only `active_fraction` of each class is eligible within
  /// an epoch.  0 disables churn (all flows always eligible).
  Cycle churn_epoch = 0;
  double active_fraction = 0.25;

  /// Incast bursts: every `incast_every` cycles, `incast_fanin` flows
  /// fire one `incast_length` packet each in the same cycle.  0 disables.
  Cycle incast_every = 0;
  std::size_t incast_fanin = 32;
  Flits incast_length = 4;
};

/// Streams the trace in order into `sink` without materialising it.
/// Deterministic in (spec, seed).
void synthesize_trace(const SynthSpec& spec, std::uint64_t seed,
                      const std::function<void(const TraceEntry&)>& sink);

/// Materialising wrapper around the streaming form.
[[nodiscard]] Trace synthesize_trace(const SynthSpec& spec,
                                     std::uint64_t seed);

}  // namespace wormsched::traffic
