// Packet-length distributions.
//
// The paper's experiments use two laws: uniform on [1, 64] / [1, 128]
// flits (Figs. 4 and 5) and truncated exponential with lambda = 0.2 on
// [1, 64] (Fig. 6, where small packets dominate and ERR's 3m bound beats
// DRR's Max + 2m).  Constant and bimodal laws are included for the
// ablation benches and property tests.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace wormsched::traffic {

struct LengthSpec {
  enum class Kind {
    kConstant,   // always `lo`
    kUniform,    // uniform integer on [lo, hi]
    kTruncExp,   // P(k) ~ exp(-lambda k) on [lo, hi]
    kBimodal,    // `lo` with probability `bimodal_small_prob`, else `hi`
  };

  Kind kind = Kind::kUniform;
  Flits lo = 1;
  Flits hi = 64;
  double lambda = 0.2;             // kTruncExp only
  double bimodal_small_prob = 0.9; // kBimodal only

  [[nodiscard]] static LengthSpec constant(Flits value) {
    return {Kind::kConstant, value, value, 0.0, 0.0};
  }
  [[nodiscard]] static LengthSpec uniform(Flits lo, Flits hi) {
    return {Kind::kUniform, lo, hi, 0.0, 0.0};
  }
  [[nodiscard]] static LengthSpec truncated_exponential(double lambda, Flits lo,
                                                        Flits hi) {
    return {Kind::kTruncExp, lo, hi, lambda, 0.0};
  }
  [[nodiscard]] static LengthSpec bimodal(Flits small, Flits large,
                                          double small_prob) {
    return {Kind::kBimodal, small, large, 0.0, small_prob};
  }

  /// Largest packet this law can produce (the paper's "Max").
  [[nodiscard]] Flits max_length() const { return hi; }

  /// Expected packet length in flits.
  [[nodiscard]] double mean_length() const;

  [[nodiscard]] std::string describe() const;
};

/// Draws one packet length.
[[nodiscard]] Flits sample_length(Rng& rng, const LengthSpec& spec);

}  // namespace wormsched::traffic
