#include "traffic/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace wormsched::traffic {

namespace {

constexpr std::string_view kHeader = "cycle,flow,length";

[[noreturn]] void malformed(std::size_t line, const std::string& why) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " + why);
}

// Files written on Windows (or piped through tools that emit CRLF) arrive
// with a '\r' still attached after getline strips the '\n'; without this
// the header compare fails with a misleading "missing header" error.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

template <typename T>
T parse_field(std::string_view text, std::size_t line, const char* what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    malformed(line, std::string("bad ") + what + " '" + std::string(text) +
                        "'");
  return value;
}

}  // namespace

void save_trace(std::ostream& os, const Trace& trace) {
  os << kHeader << '\n';
  for (const TraceEntry& e : trace.entries)
    os << e.cycle << ',' << e.flow.value() << ',' << e.length << '\n';
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  save_trace(out, trace);
}

Trace load_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("trace: missing 'cycle,flow,length' header");
  strip_cr(line);
  if (line != kHeader)
    throw std::runtime_error("trace: missing 'cycle,flow,length' header");
  Trace trace;
  std::size_t line_no = 1;
  FlowId::rep_type max_flow = 0;
  Cycle prev_cycle = 0;
  while (std::getline(is, line)) {
    ++line_no;
    strip_cr(line);
    if (line.empty()) continue;
    const std::string_view view(line);
    const auto c1 = view.find(',');
    const auto c2 = view.find(',', c1 == std::string_view::npos ? 0 : c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos)
      malformed(line_no, "expected three comma-separated fields");
    const auto cycle = parse_field<Cycle>(view.substr(0, c1), line_no, "cycle");
    const auto flow = parse_field<FlowId::rep_type>(
        view.substr(c1 + 1, c2 - c1 - 1), line_no, "flow");
    const auto length =
        parse_field<Flits>(view.substr(c2 + 1), line_no, "length");
    if (length <= 0) malformed(line_no, "non-positive length");
    if (cycle < prev_cycle) malformed(line_no, "cycles must be non-decreasing");
    prev_cycle = cycle;
    max_flow = std::max(max_flow, flow);
    trace.entries.push_back(TraceEntry{cycle, FlowId(flow), length});
  }
  if (trace.entries.empty())
    throw std::runtime_error(
        "trace: no entries after header (a header-only trace would drive a "
        "zero-flow scheduler)");
  trace.num_flows = max_flow + 1;
  return trace;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_trace(in);
}

}  // namespace wormsched::traffic
