// Packet arrival processes.
//
// All processes are driven cycle-by-cycle and report how many packets a
// flow injects in the current cycle.  Rates are in packets/cycle; the
// paper's "flow 3 arrives at twice the rate of other flows" is expressed
// by doubling that flow's rate.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace wormsched::traffic {

struct ArrivalSpec {
  enum class Kind {
    kBernoulli,  // one packet with probability `rate` each cycle
    kPoisson,    // exponential interarrivals with mean 1/rate
    kPeriodic,   // one packet every round(1/rate) cycles
    kOnOff,      // two-state burst process: Bernoulli(rate) while ON
  };

  Kind kind = Kind::kBernoulli;
  double rate = 0.01;  // packets per cycle (long-run, except kOnOff: ON rate)
  // kOnOff only: geometric sojourns with these mean durations (cycles).
  double mean_on = 100.0;
  double mean_off = 100.0;

  [[nodiscard]] static ArrivalSpec bernoulli(double rate) {
    return {Kind::kBernoulli, rate, 0.0, 0.0};
  }
  [[nodiscard]] static ArrivalSpec poisson(double rate) {
    return {Kind::kPoisson, rate, 0.0, 0.0};
  }
  [[nodiscard]] static ArrivalSpec periodic(double rate) {
    return {Kind::kPeriodic, rate, 0.0, 0.0};
  }
  [[nodiscard]] static ArrivalSpec on_off(double on_rate, double mean_on,
                                          double mean_off) {
    return {Kind::kOnOff, on_rate, mean_on, mean_off};
  }

  /// Long-run average packets per cycle.
  [[nodiscard]] double mean_rate() const;

  [[nodiscard]] std::string describe() const;
};

/// Stateful per-flow sampler for an ArrivalSpec.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, Rng rng);

  /// Number of packets this flow injects in cycle `now`.  Must be called
  /// for every cycle, in order.
  [[nodiscard]] std::uint32_t packets_this_cycle(Cycle now);

 private:
  ArrivalSpec spec_;
  Rng rng_;
  double next_poisson_time_ = -1.0;
  Cycle next_periodic_ = 0;
  bool on_ = true;
};

}  // namespace wormsched::traffic
