// Workload specification and deterministic trace generation.
//
// A WorkloadSpec describes every flow's arrival process, packet-length law
// and weight.  generate_trace() expands it into a concrete, time-ordered
// arrival trace.  The harness replays the *same* trace into each scheduler
// under comparison, so differences in the figures come from the discipline
// alone, never from sampling noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "traffic/arrival.hpp"
#include "traffic/length.hpp"

namespace wormsched::traffic {

struct FlowSpec {
  ArrivalSpec arrival;
  LengthSpec length;
  double weight = 1.0;
};

struct WorkloadSpec {
  std::vector<FlowSpec> flows;
  /// Injection stops at this cycle (exclusive); the Fig. 5 experiment uses
  /// a 10,000-cycle transient-congestion window.
  Cycle inject_until = kCycleMax;

  [[nodiscard]] std::size_t num_flows() const { return flows.size(); }

  /// Aggregate offered load in flits/cycle (output capacity is 1).
  [[nodiscard]] double offered_load() const;

  /// Largest packet any flow's law can produce — the paper's "Max".
  [[nodiscard]] Flits max_packet_length() const;
};

/// One packet arrival.
struct TraceEntry {
  Cycle cycle;
  FlowId flow;
  Flits length;
};

/// A time-ordered arrival trace plus summary statistics.
struct Trace {
  std::vector<TraceEntry> entries;
  std::size_t num_flows = 0;

  /// Largest packet that actually appears — the paper's "m" (Def. 2 is
  /// about *served* packets; for a trace that is fully served they agree).
  [[nodiscard]] Flits max_observed_length() const;
  [[nodiscard]] Flits total_flits() const;
  /// Flits injected by one flow.
  [[nodiscard]] Flits flow_flits(FlowId flow) const;
};

/// Expands `spec` over [0, horizon) cycles.  Each flow draws from its own
/// RNG stream split off `seed`, so changing one flow's parameters never
/// perturbs another flow's draws.
[[nodiscard]] Trace generate_trace(const WorkloadSpec& spec, Cycle horizon,
                                   std::uint64_t seed);

}  // namespace wormsched::traffic
