#include "traffic/trace_synth.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace wormsched::traffic {

namespace {

// splitmix64 finalizer — the role/eligibility hash.  Stateless, so a
// million idle flows cost nothing until one of them is actually drawn.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool hash_below(std::uint64_t key, double fraction) {
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  // Top 53 bits → uniform double in [0, 1).
  const double u =
      static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
  return u < fraction;
}

struct FlowClass {
  std::vector<std::uint32_t> flows;
  double packets_per_cycle = 0.0;  // Poisson mean
  Flits min_length = 1;
  Flits max_length = 1;
};

// Picks an eligible flow from the class under churn; bounded rejection
// sampling keeps the draw O(1) — after a few misses any flow goes, which
// only softens the churn edge, never stalls generation.
std::uint32_t pick_flow(const FlowClass& cls, const SynthSpec& spec,
                        std::uint64_t seed, Cycle epoch, Rng& rng) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint32_t flow = cls.flows[static_cast<std::size_t>(
        rng.uniform_u64(cls.flows.size()))];
    if (spec.churn_epoch == 0 ||
        hash_below(mix64(seed ^ 0x43485552ULL) ^ mix64(flow) ^ epoch,
                   spec.active_fraction))
      return flow;
  }
  return cls.flows[static_cast<std::size_t>(
      rng.uniform_u64(cls.flows.size()))];
}

}  // namespace

void synthesize_trace(const SynthSpec& spec, std::uint64_t seed,
                      const std::function<void(const TraceEntry&)>& sink) {
  WS_CHECK_MSG(spec.num_flows > 0, "synth spec needs at least one flow");
  WS_CHECK_MSG(spec.load > 0.0, "synth spec needs positive load");
  WS_CHECK_MSG(spec.mice_min_length > 0 &&
                   spec.mice_max_length >= spec.mice_min_length,
               "mice length range is invalid");
  WS_CHECK_MSG(spec.elephant_min_length > 0 &&
                   spec.elephant_max_length >= spec.elephant_min_length,
               "elephant length range is invalid");

  FlowClass elephants;
  elephants.min_length = spec.elephant_min_length;
  elephants.max_length = spec.elephant_max_length;
  FlowClass mice;
  mice.min_length = spec.mice_min_length;
  mice.max_length = spec.mice_max_length;
  for (std::uint32_t f = 0; f < spec.num_flows; ++f) {
    const bool elephant =
        hash_below(mix64(seed ^ 0x454C4550ULL) ^ f, spec.elephant_fraction);
    (elephant ? elephants : mice).flows.push_back(f);
  }

  // Split the flit load into per-class packet rates; an empty class hands
  // its share to the other so the offered load is honoured either way.
  double elephant_share = spec.elephant_share;
  if (elephants.flows.empty()) elephant_share = 0.0;
  if (mice.flows.empty()) elephant_share = 1.0;
  const auto mean_length = [](const FlowClass& c) {
    return 0.5 * (static_cast<double>(c.min_length) +
                  static_cast<double>(c.max_length));
  };
  if (!elephants.flows.empty())
    elephants.packets_per_cycle =
        spec.load * elephant_share / mean_length(elephants);
  if (!mice.flows.empty())
    mice.packets_per_cycle =
        spec.load * (1.0 - elephant_share) / mean_length(mice);

  Rng rng(mix64(seed) | 1);
  for (Cycle now = 0; now < spec.horizon; ++now) {
    const Cycle epoch =
        spec.churn_epoch == 0 ? 0 : now / spec.churn_epoch;

    if (spec.incast_every != 0 && now != 0 &&
        now % spec.incast_every == 0) {
      const std::size_t fanin =
          spec.incast_fanin < spec.num_flows ? spec.incast_fanin
                                             : spec.num_flows;
      for (std::size_t i = 0; i < fanin; ++i) {
        const std::uint32_t flow = static_cast<std::uint32_t>(
            rng.uniform_u64(spec.num_flows));
        sink(TraceEntry{now, FlowId(flow), spec.incast_length});
      }
    }

    for (const FlowClass* cls : {&elephants, &mice}) {
      if (cls->packets_per_cycle <= 0.0) continue;
      const std::uint64_t arrivals = rng.poisson(cls->packets_per_cycle);
      for (std::uint64_t i = 0; i < arrivals; ++i) {
        const std::uint32_t flow =
            pick_flow(*cls, spec, seed, epoch, rng);
        const Flits length =
            rng.uniform_int(cls->min_length, cls->max_length);
        sink(TraceEntry{now, FlowId(flow), length});
      }
    }
  }
}

Trace synthesize_trace(const SynthSpec& spec, std::uint64_t seed) {
  Trace trace;
  trace.num_flows = spec.num_flows;
  synthesize_trace(spec, seed, [&](const TraceEntry& e) {
    trace.entries.push_back(e);
  });
  return trace;
}

}  // namespace wormsched::traffic
