#include "traffic/length.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace wormsched::traffic {

double LengthSpec::mean_length() const {
  switch (kind) {
    case Kind::kConstant:
      return static_cast<double>(lo);
    case Kind::kUniform:
      return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
    case Kind::kTruncExp: {
      // Exact mean of the truncated geometric-like law P(k) ~ e^{-lambda k}
      // on integers [lo, hi].
      double num = 0.0;
      double den = 0.0;
      for (Flits k = lo; k <= hi; ++k) {
        const double p = std::exp(-lambda * static_cast<double>(k));
        num += static_cast<double>(k) * p;
        den += p;
      }
      return num / den;
    }
    case Kind::kBimodal:
      return bimodal_small_prob * static_cast<double>(lo) +
             (1.0 - bimodal_small_prob) * static_cast<double>(hi);
  }
  return 0.0;
}

std::string LengthSpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConstant:
      os << "const(" << lo << ")";
      break;
    case Kind::kUniform:
      os << "U[" << lo << "," << hi << "]";
      break;
    case Kind::kTruncExp:
      os << "TruncExp(lambda=" << lambda << ",[" << lo << "," << hi << "])";
      break;
    case Kind::kBimodal:
      os << "Bimodal(" << lo << "@" << bimodal_small_prob << "," << hi << ")";
      break;
  }
  return os.str();
}

Flits sample_length(Rng& rng, const LengthSpec& spec) {
  WS_CHECK(spec.lo >= 1 && spec.lo <= spec.hi);
  switch (spec.kind) {
    case LengthSpec::Kind::kConstant:
      return spec.lo;
    case LengthSpec::Kind::kUniform:
      return rng.uniform_int(spec.lo, spec.hi);
    case LengthSpec::Kind::kTruncExp:
      return rng.truncated_exponential_int(spec.lambda, spec.lo, spec.hi);
    case LengthSpec::Kind::kBimodal:
      return rng.bernoulli(spec.bimodal_small_prob) ? spec.lo : spec.hi;
  }
  return spec.lo;
}

}  // namespace wormsched::traffic
