#include "traffic/arrival.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace wormsched::traffic {

double ArrivalSpec::mean_rate() const {
  switch (kind) {
    case Kind::kBernoulli:
    case Kind::kPoisson:
    case Kind::kPeriodic:
      return rate;
    case Kind::kOnOff:
      return rate * mean_on / (mean_on + mean_off);
  }
  return 0.0;
}

std::string ArrivalSpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kBernoulli:
      os << "Bernoulli(" << rate << ")";
      break;
    case Kind::kPoisson:
      os << "Poisson(" << rate << ")";
      break;
    case Kind::kPeriodic:
      os << "Periodic(" << rate << ")";
      break;
    case Kind::kOnOff:
      os << "OnOff(rate=" << rate << ",on=" << mean_on << ",off=" << mean_off
         << ")";
      break;
  }
  return os.str();
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  WS_CHECK(spec.rate >= 0.0);
}

std::uint32_t ArrivalProcess::packets_this_cycle(Cycle now) {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kBernoulli:
      return rng_.bernoulli(spec_.rate) ? 1 : 0;

    case ArrivalSpec::Kind::kPoisson: {
      if (spec_.rate <= 0.0) return 0;
      if (next_poisson_time_ < 0.0)
        next_poisson_time_ =
            static_cast<double>(now) + rng_.exponential(spec_.rate);
      std::uint32_t count = 0;
      // All renewal points falling inside [now, now+1) arrive this cycle.
      while (next_poisson_time_ < static_cast<double>(now) + 1.0) {
        ++count;
        next_poisson_time_ += rng_.exponential(spec_.rate);
      }
      return count;
    }

    case ArrivalSpec::Kind::kPeriodic: {
      if (spec_.rate <= 0.0) return 0;
      if (now < next_periodic_) return 0;
      const auto period =
          std::max<Cycle>(1, static_cast<Cycle>(std::llround(1.0 / spec_.rate)));
      next_periodic_ = now + period;
      return 1;
    }

    case ArrivalSpec::Kind::kOnOff: {
      // Geometric sojourn: leave the current state with probability
      // 1/mean_duration per cycle.
      const double leave_p = on_ ? 1.0 / std::max(1.0, spec_.mean_on)
                                 : 1.0 / std::max(1.0, spec_.mean_off);
      if (rng_.bernoulli(leave_p)) on_ = !on_;
      return (on_ && rng_.bernoulli(spec_.rate)) ? 1 : 0;
    }
  }
  return 0;
}

}  // namespace wormsched::traffic
