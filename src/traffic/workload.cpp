#include "traffic/workload.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wormsched::traffic {

double WorkloadSpec::offered_load() const {
  double load = 0.0;
  for (const FlowSpec& f : flows)
    load += f.arrival.mean_rate() * f.length.mean_length();
  return load;
}

Flits WorkloadSpec::max_packet_length() const {
  Flits max_len = 0;
  for (const FlowSpec& f : flows)
    max_len = std::max(max_len, f.length.max_length());
  return max_len;
}

Flits Trace::max_observed_length() const {
  Flits max_len = 0;
  for (const TraceEntry& e : entries) max_len = std::max(max_len, e.length);
  return max_len;
}

Flits Trace::total_flits() const {
  Flits total = 0;
  for (const TraceEntry& e : entries) total += e.length;
  return total;
}

Flits Trace::flow_flits(FlowId flow) const {
  Flits total = 0;
  for (const TraceEntry& e : entries)
    if (e.flow == flow) total += e.length;
  return total;
}

Trace generate_trace(const WorkloadSpec& spec, Cycle horizon,
                     std::uint64_t seed) {
  WS_CHECK(!spec.flows.empty());
  Rng master(seed);

  struct FlowDriver {
    ArrivalProcess arrivals;
    Rng length_rng;
  };
  std::vector<FlowDriver> drivers;
  drivers.reserve(spec.flows.size());
  for (const FlowSpec& f : spec.flows) {
    Rng arrival_rng = master.split();
    Rng length_rng = master.split();
    drivers.push_back(FlowDriver{ArrivalProcess(f.arrival, arrival_rng),
                                 length_rng});
  }

  Trace trace;
  trace.num_flows = spec.flows.size();
  const Cycle inject_end = std::min(horizon, spec.inject_until);
  for (Cycle t = 0; t < inject_end; ++t) {
    for (std::size_t i = 0; i < drivers.size(); ++i) {
      const std::uint32_t count = drivers[i].arrivals.packets_this_cycle(t);
      for (std::uint32_t k = 0; k < count; ++k) {
        trace.entries.push_back(TraceEntry{
            t, FlowId(static_cast<FlowId::rep_type>(i)),
            sample_length(drivers[i].length_rng, spec.flows[i].length)});
      }
    }
  }
  return trace;
}

}  // namespace wormsched::traffic
