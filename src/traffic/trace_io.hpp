// Trace persistence: save/load arrival traces as CSV so experiments can
// be archived, diffed and replayed across machines and versions.
//
// Format (one header line, then one line per packet arrival):
//   cycle,flow,length
// Cycles must be non-decreasing; flow ids dense from 0.
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/workload.hpp"

namespace wormsched::traffic {

/// Writes `trace` to `os` in the CSV format above.
void save_trace(std::ostream& os, const Trace& trace);
/// Writes `trace` to the file at `path`; throws std::runtime_error when
/// the file cannot be opened.
void save_trace_file(const std::string& path, const Trace& trace);

/// Parses a trace; throws std::runtime_error on malformed input
/// (bad header, non-numeric fields, negative lengths, time travel).
[[nodiscard]] Trace load_trace(std::istream& is);
[[nodiscard]] Trace load_trace_file(const std::string& path);

}  // namespace wormsched::traffic
