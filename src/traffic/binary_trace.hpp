// Binary arrival-trace persistence (docs/TRACE_FORMAT.md).
//
// The CSV format in trace_io.hpp is fine for the paper-scale figures but
// costs ~20 bytes and a strtoll per field at million-flow scale.  This is
// the compact companion: a length-tagged binary container in the same
// discipline as the snapshot container (magic | version | flags | metadata
// JSON | payload | CRC32 trailer), with the payload split into tagged
// sections so future versions can add sections without breaking readers.
//
//   magic "WSTRACE\0" | u32 version | u32 flags (0) |
//   u64 meta_len + metadata JSON | u64 payload_len + payload |
//   u32 crc32(payload)
//
// Payload sections:
//   META — u64 num_flows, u64 entry_count, u64 horizon (last cycle + 1),
//          i64 total_flits, i64 max_length.  Redundant with the entry
//          stream on purpose: the reader cross-checks the totals, so a
//          bit-flip that survives the CRC still cannot misreport a trace.
//   ENTR — per entry, three LEB128 varints: cycle delta from the previous
//          entry (traces are time-ordered, so deltas stay tiny), flow id,
//          and length in flits.  Typical entries take 3-6 bytes against
//          CSV's ~15.
//
// Error handling matches snapshot.hpp: every malformed input — bad magic,
// wrong version, truncation anywhere, CRC mismatch, varint overflow,
// out-of-range flow, non-positive length, totals disagreeing with META —
// throws SnapshotError and never reads out of bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/snapshot.hpp"
#include "traffic/workload.hpp"

namespace wormsched::traffic {

/// Bumped whenever the payload layout changes; readers accept only their
/// own version and reject others with a clear message.
inline constexpr std::uint32_t kBinaryTraceFormatVersion = 1;

/// Streaming encoder.  Append entries in trace order (non-decreasing
/// cycle — checked), then finish() to get the complete file image.
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(std::size_t num_flows);

  void append(const TraceEntry& entry);

  /// Seals the container; `meta_json` is carried verbatim as provenance.
  /// The writer is spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish(
      std::string_view meta_json = "{}") const;

  [[nodiscard]] std::uint64_t entry_count() const { return entry_count_; }
  [[nodiscard]] Flits total_flits() const { return total_flits_; }

 private:
  std::size_t num_flows_;
  SnapshotWriter entries_;  // the raw varint stream, spliced in by finish()
  std::uint64_t entry_count_ = 0;
  Cycle last_cycle_ = 0;
  Cycle horizon_ = 0;
  Flits total_flits_ = 0;
  Flits max_length_ = 0;
};

/// Streaming decoder over a borrowed byte image (zero-copy: entries decode
/// straight out of the caller's buffer).  The constructor validates the
/// container (magic, version, CRC) and the META section; next() yields
/// entries until the stream is exhausted, then cross-checks the totals.
class BinaryTraceReader {
 public:
  BinaryTraceReader(const std::uint8_t* data, std::size_t size);
  explicit BinaryTraceReader(const std::vector<std::uint8_t>& bytes)
      : BinaryTraceReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::size_t num_flows() const { return num_flows_; }
  [[nodiscard]] std::uint64_t entry_count() const { return entry_count_; }
  [[nodiscard]] Cycle horizon() const { return horizon_; }
  [[nodiscard]] Flits total_flits() const { return total_flits_; }
  [[nodiscard]] Flits max_length() const { return max_length_; }
  [[nodiscard]] const std::string& meta_json() const { return meta_json_; }

  /// Next entry, or nullopt once all `entry_count()` entries were read
  /// (at which point the META totals have been verified).
  [[nodiscard]] std::optional<TraceEntry> next();

 private:
  SnapshotReader r_{nullptr, std::size_t{0}};
  std::string meta_json_;
  std::size_t num_flows_ = 0;
  std::uint64_t entry_count_ = 0;
  Cycle horizon_ = 0;
  Flits total_flits_ = 0;
  Flits max_length_ = 0;

  std::uint64_t read_ = 0;
  Cycle cycle_ = 0;
  Flits seen_flits_ = 0;
  Flits seen_max_ = 0;
  bool finished_ = false;
};

/// Whole-trace conveniences over the streaming pair.
[[nodiscard]] std::vector<std::uint8_t> encode_binary_trace(
    const Trace& trace, std::string_view meta_json = "{}");
[[nodiscard]] Trace decode_binary_trace(const std::vector<std::uint8_t>& bytes);

/// File I/O.  Writing throws std::runtime_error on I/O failure; loading
/// throws SnapshotError on malformed content (matching snapshot files).
void save_binary_trace_file(const std::string& path, const Trace& trace,
                            std::string_view meta_json = "{}");
/// Writes a pre-encoded image (BinaryTraceWriter::finish()) to disk — the
/// streaming producers' path, which never materialises a Trace.
void write_binary_trace_bytes(const std::string& path,
                              const std::vector<std::uint8_t>& bytes);
[[nodiscard]] Trace load_binary_trace_file(const std::string& path);

/// Magic sniff, so front ends can accept binary and CSV traces through
/// one flag.  False for short or non-matching prefixes; never throws.
[[nodiscard]] bool is_binary_trace(const std::uint8_t* data, std::size_t size);
[[nodiscard]] bool is_binary_trace_file(const std::string& path);

}  // namespace wormsched::traffic
