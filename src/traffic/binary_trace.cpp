#include "traffic/binary_trace.hpp"

#include <cstdio>
#include <cstring>
#include <limits>

#include "common/assert.hpp"

namespace wormsched::traffic {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'T', 'R', 'A', 'C', 'E', '\0'};

// Payload section tags ("META" / "ENTR" as little-endian u32).
constexpr std::uint32_t kMetaTag = 0x4154454D;
constexpr std::uint32_t kEntriesTag = 0x52544E45;

// LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(SnapshotWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(SnapshotReader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = r.u8();
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte holds the top bit only; anything above overflows.
      if (shift == 63 && byte > 1)
        throw SnapshotError("binary trace varint overflows 64 bits");
      return v;
    }
  }
  throw SnapshotError("binary trace varint overflows 64 bits");
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::size_t num_flows)
    : num_flows_(num_flows) {
  WS_CHECK_MSG(num_flows > 0, "binary trace needs at least one flow");
}

void BinaryTraceWriter::append(const TraceEntry& entry) {
  WS_CHECK_MSG(entry.flow.index() < num_flows_,
               "trace entry names an out-of-range flow");
  WS_CHECK_MSG(entry.length > 0, "trace entry with non-positive length");
  WS_CHECK_MSG(entry.cycle >= last_cycle_,
               "trace entries must be in non-decreasing cycle order");
  put_varint(entries_, entry.cycle - last_cycle_);
  put_varint(entries_, entry.flow.value());
  put_varint(entries_, static_cast<std::uint64_t>(entry.length));
  last_cycle_ = entry.cycle;
  horizon_ = entry.cycle + 1;
  total_flits_ += entry.length;
  if (entry.length > max_length_) max_length_ = entry.length;
  ++entry_count_;
}

std::vector<std::uint8_t> BinaryTraceWriter::finish(
    std::string_view meta_json) const {
  SnapshotWriter payload;
  payload.begin_section(kMetaTag);
  payload.u64(num_flows_);
  payload.u64(entry_count_);
  payload.u64(horizon_);
  payload.i64(total_flits_);
  payload.i64(max_length_);
  payload.end_section();
  payload.begin_section(kEntriesTag);
  payload.raw(entries_.bytes().data(), entries_.bytes().size());
  payload.end_section();

  const std::vector<std::uint8_t>& body = payload.bytes();
  SnapshotWriter file;
  for (const char c : kMagic) file.u8(static_cast<std::uint8_t>(c));
  file.u32(kBinaryTraceFormatVersion);
  file.u32(0);  // flags, reserved
  file.str(meta_json);
  file.u64(body.size());
  file.raw(body.data(), body.size());
  file.u32(snapshot_crc32(body.data(), body.size()));
  return file.bytes();
}

BinaryTraceReader::BinaryTraceReader(const std::uint8_t* data,
                                     std::size_t size) {
  if (size < sizeof(kMagic) ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("not a wormsched binary trace (bad magic)");
  SnapshotReader header(data, size);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)header.u8();
  const std::uint32_t version = header.u32();
  if (version != kBinaryTraceFormatVersion)
    throw SnapshotError("unsupported binary trace format version " +
                        std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kBinaryTraceFormatVersion) + ")");
  (void)header.u32();  // flags
  meta_json_ = header.str();
  const std::uint64_t payload_len = header.u64();
  // Borrow the payload span in place; the declared trailer must fit too.
  const std::uint64_t header_bytes =
      sizeof(kMagic) + 4 + 4 + 8 + meta_json_.size() + 8;
  if (payload_len > size - header_bytes ||
      size - header_bytes - payload_len < 4)
    throw SnapshotError("binary trace truncated (read past end of data)");
  const std::uint8_t* payload = data + header_bytes;
  std::uint32_t declared_crc = 0;
  for (std::size_t i = 0; i < 4; ++i)
    declared_crc |= static_cast<std::uint32_t>(payload[payload_len + i])
                    << (8 * i);
  if (declared_crc !=
      snapshot_crc32(payload, static_cast<std::size_t>(payload_len)))
    throw SnapshotError("binary trace payload corrupted (CRC mismatch)");

  r_ = SnapshotReader(payload, static_cast<std::size_t>(payload_len));
  r_.enter_section(kMetaTag);
  num_flows_ = static_cast<std::size_t>(r_.u64());
  if (num_flows_ == 0)
    throw SnapshotError("binary trace declares zero flows");
  entry_count_ = r_.u64();
  horizon_ = r_.u64();
  total_flits_ = r_.i64();
  max_length_ = r_.i64();
  if (total_flits_ < 0 || max_length_ < 0)
    throw SnapshotError("binary trace header totals are negative");
  r_.leave_section();
  r_.enter_section(kEntriesTag);
}

std::optional<TraceEntry> BinaryTraceReader::next() {
  if (finished_) return std::nullopt;
  if (read_ == entry_count_) {
    // End of stream: the redundant META totals must agree with what the
    // entry stream actually carried.
    if (seen_flits_ != total_flits_ || seen_max_ != max_length_ ||
        (entry_count_ > 0 && cycle_ + 1 != horizon_) ||
        (entry_count_ == 0 && horizon_ != 0))
      throw SnapshotError(
          "binary trace entry stream disagrees with its header totals");
    r_.leave_section();
    finished_ = true;
    return std::nullopt;
  }
  cycle_ += get_varint(r_);
  const std::uint64_t flow = get_varint(r_);
  if (flow >= num_flows_)
    throw SnapshotError("binary trace entry names an out-of-range flow");
  const std::uint64_t length = get_varint(r_);
  if (length == 0 ||
      length > static_cast<std::uint64_t>(std::numeric_limits<Flits>::max()))
    throw SnapshotError("binary trace entry has an invalid length");
  ++read_;
  const Flits flits = static_cast<Flits>(length);
  seen_flits_ += flits;
  if (flits > seen_max_) seen_max_ = flits;
  return TraceEntry{cycle_, FlowId(static_cast<std::uint32_t>(flow)), flits};
}

std::vector<std::uint8_t> encode_binary_trace(const Trace& trace,
                                              std::string_view meta_json) {
  BinaryTraceWriter w(trace.num_flows);
  for (const TraceEntry& e : trace.entries) w.append(e);
  return w.finish(meta_json);
}

Trace decode_binary_trace(const std::vector<std::uint8_t>& bytes) {
  BinaryTraceReader r(bytes);
  Trace trace;
  trace.num_flows = r.num_flows();
  trace.entries.reserve(static_cast<std::size_t>(r.entry_count()));
  while (auto entry = r.next()) trace.entries.push_back(*entry);
  return trace;
}

void save_binary_trace_file(const std::string& path, const Trace& trace,
                            std::string_view meta_json) {
  write_binary_trace_bytes(path, encode_binary_trace(trace, meta_json));
}

void write_binary_trace_bytes(const std::string& path,
                              const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("cannot open trace file for writing: " + path);
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) throw std::runtime_error("short write to trace file: " + path);
}

Trace load_binary_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw SnapshotError("cannot open trace file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw SnapshotError("I/O error reading trace: " + path);
  return decode_binary_trace(bytes);
}

bool is_binary_trace(const std::uint8_t* data, std::size_t size) {
  return size >= sizeof(kMagic) &&
         std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
}

bool is_binary_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint8_t head[sizeof(kMagic)];
  const std::size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return got == sizeof(head) && is_binary_trace(head, sizeof(head));
}

}  // namespace wormsched::traffic
