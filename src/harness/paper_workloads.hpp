// The exact workloads of the paper's evaluation (Sec. 5), expressed once
// and shared by benches, examples and integration tests.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "traffic/workload.hpp"

namespace wormsched::harness {

/// Fig. 4 workload: `num_flows` flows (the paper uses 8, ids 0..7);
/// packet lengths U[1,64] flits except flow 2, which uses U[1,128]; flow 3
/// arrives at twice the packet rate of the others.  `overload` is the
/// ratio of aggregate offered load to output capacity; the paper keeps all
/// flows active for the whole 4M-cycle run, which requires every flow's
/// offered load to exceed its fair share (overload >= ~1.35 for 8 flows).
[[nodiscard]] traffic::WorkloadSpec fig4_workload(std::size_t num_flows = 8,
                                                  double overload = 1.5);

/// Fig. 5 workload: 4 flows with the same length/rate asymmetries (flow 2
/// long packets, flow 3 double rate); aggregate input rate is
/// `congestion_ratio` times the output rate, injected only for the first
/// `congestion_cycles` cycles (the transient-congestion window), after
/// which the queues drain.
[[nodiscard]] traffic::WorkloadSpec fig5_workload(
    double congestion_ratio, Cycle congestion_cycles = 10'000);

/// Fig. 6 workload: `num_flows` symmetric flows, packet lengths truncated-
/// exponential (lambda = 0.2) on [1, 64] flits; `overload` as in Fig. 4.
[[nodiscard]] traffic::WorkloadSpec fig6_workload(std::size_t num_flows,
                                                  double overload = 1.5);

/// The paper's byte constant: "We assume a flit size of 8 bytes".
inline constexpr Bytes kPaperFlitBytes = 8;

/// The paper's measurement horizon for Figs. 4 and 6.
inline constexpr Cycle kPaperHorizon = 4'000'000;

}  // namespace wormsched::harness
