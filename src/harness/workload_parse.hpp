// Compact textual workload specifications for command-line tools.
//
// Grammar (flows separated by ';', optional '*N' repetition):
//   flow     := arrival ":" rate ":" length [ ":" weight ] [ "*" count ]
//   arrival  := "bern" | "poisson" | "periodic" | "onoff-<on>-<off>"
//   rate     := packets per cycle (floating point)
//   length   := "u<lo>-<hi>"            uniform
//             | "e<lambda>-<lo>-<hi>"   truncated exponential
//             | "c<len>"                constant
//             | "b<small>-<large>-<p>"  bimodal (p = P[small])
//
// Examples:
//   "bern:0.005:u1-64*7;bern:0.01:u1-128"      the Fig. 4 asymmetries
//   "poisson:0.02:e0.2-1-64:2.0*4"             4 weighted flows, exp lengths
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "traffic/workload.hpp"

namespace wormsched::harness {

struct WorkloadParse {
  traffic::WorkloadSpec spec;
  std::vector<double> weights;  // parallel to spec.flows
};

/// Parses `text`; returns nullopt and fills *error on malformed input.
[[nodiscard]] std::optional<WorkloadParse> parse_workload(
    std::string_view text, std::string* error = nullptr);

}  // namespace wormsched::harness
