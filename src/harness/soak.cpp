#include "harness/soak.hpp"

#include <algorithm>

#include "harness/checkpoint.hpp"
#include "metrics/windowed.hpp"

namespace wormsched::harness {

namespace {

/// Advances `run` to `options.cycles`, stopping at every window boundary
/// (and checkpoint boundary) to feed the tracker.  The boundary schedule
/// depends only on (window, checkpoint_every, cycles), never on where a
/// previous segment stopped — that is what makes a restored segment's
/// tracker bit-identical to the straight run's.
SoakSummary drive_soak(NetworkRun& run, metrics::SteadyStateTracker& tracker,
                       const SoakOptions& options) {
  const Cycle window = std::max<Cycle>(1, options.window.window);
  std::uint64_t checkpoints_written = 0;
  const auto save_with_tracker = [&](const std::string& path) {
    run.save_checkpoint(path, [&tracker](SnapshotWriter& w) {
      w.begin_section(kCkptSoakTag);
      tracker.save(w);
      w.end_section();
    });
    ++checkpoints_written;
  };

  Cycle next_checkpoint = kCycleMax;
  if (options.checkpoint_every > 0 && !options.checkpoint_path.empty())
    next_checkpoint =
        (run.now() / options.checkpoint_every + 1) * options.checkpoint_every;

  while (!run.done() && run.now() < options.cycles) {
    const Cycle next_boundary = (run.now() / window + 1) * window;
    const Cycle target =
        std::min({next_boundary, next_checkpoint, options.cycles});
    run.advance_to(target);
    tracker.observe(run.now(), run.network().latency_overall(),
                    run.network().delivered_flits());
    if (run.now() >= next_checkpoint) {
      save_with_tracker(options.checkpoint_path);
      next_checkpoint += options.checkpoint_every;
    }
  }

  if (!options.checkpoint_path.empty()) save_with_tracker(options.checkpoint_path);

  SoakSummary summary;
  summary.end_cycle = run.now();
  summary.warmed_up = tracker.warmed_up();
  summary.warmup_end = tracker.warmup_end();
  summary.windows_closed = tracker.windows_closed();
  summary.steady_mean_delay = tracker.steady_mean_delay();
  summary.steady_throughput = tracker.steady_throughput();
  summary.window_mean_stddev = tracker.window_means().stddev();
  summary.checkpoints_written = checkpoints_written;
  summary.restore_count = run.restore_count();
  // finish() last: the audit-flush pass may add tail-window violations.
  const NetworkScenarioResult result = run.finish();
  summary.generated_packets = result.generated_packets;
  summary.delivered_packets = result.delivered_packets;
  summary.delivered_flits = result.delivered_flits;
  summary.audit_violations = result.audit_violations;
  return summary;
}

/// Soak runs never keep the per-packet delivery log: memory must stay
/// O(1) regardless of horizon.
NetworkScenarioConfig soak_config(const NetworkScenarioConfig& config) {
  NetworkScenarioConfig effective = config;
  effective.network.record_delivered = false;
  return effective;
}

}  // namespace

SoakSummary run_soak(const NetworkScenarioConfig& config, std::uint64_t seed,
                     const SoakOptions& options) {
  NetworkRun run(soak_config(config), seed);
  metrics::SteadyStateTracker tracker(options.window);
  return drive_soak(run, tracker, options);
}

SoakSummary resume_soak(const NetworkScenarioConfig& config,
                        const SnapshotFile& file, const SoakOptions& options) {
  NetworkRun run(soak_config(config), file);
  metrics::SteadyStateTracker tracker(options.window);
  // The tracker travels as a trailing SOAK section the NetworkRun restore
  // deliberately leaves unread; a checkpoint written by `wormsched
  // network` (no SOAK section) resumes with a fresh tracker.
  SnapshotReader r(file.payload);
  while (!r.exhausted() && r.peek_section() != 0) {
    if (r.peek_section() == kCkptSoakTag) {
      r.enter_section(kCkptSoakTag);
      tracker.restore(r);
      r.leave_section();
      break;
    }
    r.skip_section();
  }
  return drive_soak(run, tracker, options);
}

}  // namespace wormsched::harness
