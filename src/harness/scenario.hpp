// Scenario runner: replays one arrival trace through one scheduler at one
// flit per cycle, collecting everything the paper's figures need.
//
// All figure benches and most integration tests are thin wrappers around
// run_scenario(): they build a WorkloadSpec, generate ONE trace, and replay
// it into each discipline under comparison so the only varying factor is
// the scheduling algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/registry.hpp"
#include "metrics/activity.hpp"
#include "metrics/delay.hpp"
#include "metrics/service_log.hpp"
#include "obs/trace_sink.hpp"
#include "traffic/workload.hpp"
#include "validate/violation.hpp"

namespace wormsched::harness {

struct ScenarioConfig {
  /// Cycles of simulation; injection additionally respects
  /// workload.inject_until.
  Cycle horizon = 1'000'000;
  /// After the horizon, keep serving until every queue drains (the Fig. 5
  /// methodology: "halt all injection ... and continue simulation until
  /// all the queues are empty").
  bool drain = false;
  std::uint64_t seed = 1;
  Bytes flit_bytes = 8;
  core::SchedulerParams sched;  // num_flows is filled in by the runner
  /// Per-flow weights (empty = all 1).
  std::vector<double> weights;
  /// Attach the runtime invariant auditor (src/validate) to the run.
  /// Effective for ERR schedulers (the auditor subscribes to ErrPolicy's
  /// opportunity stream); a no-op for other disciplines.
  bool audit = false;
  /// Optional external violation sink.  When null and audit is set, the
  /// runner uses a private log and only the counts survive in the result
  /// (Debug builds abort on the first violation either way).
  validate::AuditLog* audit_log = nullptr;
  /// Optional structured event sink (not owned).  Records packet
  /// enqueue/dequeue (with the serving flow's ERR allowance/SC at the
  /// decision instant), every ERR service opportunity, and round
  /// boundaries.  nullptr (the default) costs one pointer test per site.
  obs::TraceSink* trace = nullptr;
};

/// Everything measured during one run.
struct ScenarioResult {
  ScenarioResult(std::size_t num_flows, Bytes flit_bytes);

  std::string scheduler_name;
  Cycle end_cycle = 0;
  metrics::ServiceLog service_log;
  metrics::ActivityTracker activity;
  metrics::DelayStats delays;
  /// Cycles at which a packet's head flit was transmitted: a superset-free
  /// sample of the paper's T_s (service boundary instants), used by the
  /// Theorem 3 property tests.
  std::vector<Cycle> service_starts;
  /// Largest packet actually *served* — the paper's m (Def. 2).
  Flits max_served_packet = 0;
  /// Flits left unserved at the end (nonzero in overloaded, non-drained
  /// runs).
  Flits residual_backlog = 0;
  /// Filled when ScenarioConfig::audit ran: opportunities audited and
  /// invariant violations found (0 on a clean run).
  std::uint64_t audit_opportunities = 0;
  std::uint64_t audit_violations = 0;

  [[nodiscard]] std::size_t num_flows() const {
    return service_log.num_flows();
  }
};

/// Runs `trace` through the named scheduler.  The trace must have been
/// generated for the same number of flows.
[[nodiscard]] ScenarioResult run_scenario(std::string_view scheduler_name,
                                          const ScenarioConfig& config,
                                          const traffic::Trace& trace);

/// Convenience: generates the trace from `workload` with config.seed.
[[nodiscard]] ScenarioResult run_scenario(std::string_view scheduler_name,
                                          const ScenarioConfig& config,
                                          const traffic::WorkloadSpec& workload);

}  // namespace wormsched::harness
