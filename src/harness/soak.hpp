// Soak mode: unbounded-horizon network runs in O(1) memory, chained
// across checkpointed segments.
//
// A soak run advances the fabric window by window, feeding the
// steady-state tracker at every window boundary (the observe cadence is
// part of the determinism contract: straight and restored segments hit
// the same boundaries, so the tracker state is bit-identical either way).
// Per-packet delivery logging is forced off — the only per-delivery costs
// are the O(1) accumulators (RunningStat, reservoir quantiles), which is
// what keeps memory flat over multi-million-cycle horizons.
//
// Chaining: each segment ends by writing a checkpoint whose trailing SOAK
// section carries the tracker, so `wormsched soak --restore` continues
// warm-up detection and steady-state sums exactly where the previous
// segment stopped.
#pragma once

#include <cstdint>
#include <string>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "harness/network_sweep.hpp"
#include "metrics/windowed.hpp"

namespace wormsched::harness {

struct SoakOptions {
  /// Absolute cycle target for this segment (a resumed segment continues
  /// from the checkpoint's cycle toward this target).
  Cycle cycles = 5'000'000;
  /// Periodic checkpoint cadence in cycles; 0 = only the final checkpoint.
  Cycle checkpoint_every = 0;
  /// Checkpoint output path; empty = never write one (pure in-memory
  /// soak, e.g. the flat-memory test).
  std::string checkpoint_path;
  /// Windowed steady-state metrics configuration.
  metrics::WindowedConfig window;
};

struct SoakSummary {
  Cycle end_cycle = 0;
  std::uint64_t generated_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_flits = 0;
  /// Warm-up detection and windowed steady-state metrics.
  bool warmed_up = false;
  Cycle warmup_end = 0;
  std::uint64_t windows_closed = 0;
  double steady_mean_delay = 0.0;
  double steady_throughput = 0.0;
  /// Per-window mean-delay spread (flatness evidence).
  double window_mean_stddev = 0.0;
  std::uint64_t audit_violations = 0;
  std::uint64_t checkpoints_written = 0;
  /// How many restores preceded this segment (0 for a fresh soak).
  std::uint32_t restore_count = 0;
};

/// Runs a fresh soak of `config` (record_delivered is forced off) with
/// `seed` until `options.cycles` or fabric completion.
[[nodiscard]] SoakSummary run_soak(const NetworkScenarioConfig& config,
                                   std::uint64_t seed,
                                   const SoakOptions& options);

/// Resumes a soak from a checkpoint written by a previous segment.  The
/// network/source/tracker state comes from the file; `config` supplies
/// geometry and run-local wiring (audit, shards/threads), exactly as in
/// NetworkRun's restore contract.
[[nodiscard]] SoakSummary resume_soak(const NetworkScenarioConfig& config,
                                      const SnapshotFile& file,
                                      const SoakOptions& options);

}  // namespace wormsched::harness
