// Checkpoint/restore containers and resumable runners.
//
// A checkpoint file is a versioned snapshot container (common/snapshot.hpp)
// whose payload is a sequence of tagged sections:
//
//   META — kind ("network" | "scenario"), provenance (original seed, the
//          saving build's git SHA, restore count, saved cycle);
//   NCFG / SCFG — the generative run configuration (traffic law, fault
//          spec, horizon, workload text, ...), so a restored run rebuilds
//          its inputs without re-supplying them on the command line;
//   NNET + NSRC (network runs) — the full fabric and traffic-source
//          state; SSTA (scenario runs) — scheduler + metrics + replay
//          cursor state;
//   trailing sections (e.g. SOAK, the steady-state tracker) are owned by
//          the caller and skipped by readers that do not know them.
//
// The resumable runners (NetworkRun, ScenarioRun) are the load-bearing
// design point: the straight path and the checkpointed path execute the
// SAME segmented code — run_network_scenario / run_scenario are thin
// wrappers that construct a runner and drive it to completion — so
// "checkpoint at cycle k, restore, continue" is flit-for-flit identical
// to an uninterrupted run by construction, which is exactly what the
// restore-equivalence differential suite asserts.
//
// Sharding/threading is runner-local, never serialized: a checkpoint
// written by a serial run restores under --threads 4 (and vice versa)
// with bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "harness/network_sweep.hpp"
#include "harness/scenario.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_sink.hpp"
#include "sim/engine.hpp"
#include "validate/err_auditor.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::harness {

/// Checkpoint payload section tags (ASCII, little-endian).
inline constexpr std::uint32_t kCkptMetaTag = 0x4154454Du;     // "META"
inline constexpr std::uint32_t kCkptNetConfigTag = 0x4746434Eu;  // "NCFG"
inline constexpr std::uint32_t kCkptNetworkTag = 0x54454E4Eu;  // "NNET"
inline constexpr std::uint32_t kCkptSourceTag = 0x4352534Eu;   // "NSRC"
inline constexpr std::uint32_t kCkptScenConfigTag = 0x47464353u;  // "SCFG"
inline constexpr std::uint32_t kCkptScenStateTag = 0x41545353u;   // "SSTA"
inline constexpr std::uint32_t kCkptSoakTag = 0x4B414F53u;     // "SOAK"

/// Provenance embedded in (and read back from) every checkpoint.
struct CheckpointProvenance {
  std::string kind;                // "network" or "scenario"
  std::uint64_t original_seed = 0;  // seed that started the run chain
  std::string saved_git_sha;       // build that wrote this snapshot
  std::uint32_t restore_count = 0;  // restores preceding this save
  Cycle saved_cycle = 0;
};

/// Reads a checkpoint's META section (without restoring anything).
[[nodiscard]] CheckpointProvenance read_checkpoint_provenance(
    const SnapshotFile& file);

/// CLI helper: read_snapshot_file with the documented failure contract —
/// any malformed file (missing, bad magic, wrong version, truncated, CRC
/// mismatch) prints "wormsched: <path>: <reason>" to stderr and exits 2.
[[nodiscard]] SnapshotFile load_checkpoint_or_exit(const std::string& path);

/// --- Network runs ---------------------------------------------------------

/// Resumable whole-fabric run.  Owns the network, traffic source, fault
/// model, auditors and trace sink for one (config, seed) scenario and
/// advances them in segments; run_network_scenario() is the single-segment
/// special case.
class NetworkRun {
 public:
  /// Fresh run of `config` with `seed` (the exact wiring
  /// run_network_scenario has always done).
  NetworkRun(const NetworkScenarioConfig& config, std::uint64_t seed);

  /// Restored run.  Sim-defining inputs (traffic law and seed, fault
  /// spec, injection horizon, drain factor) come from the checkpoint;
  /// `config` supplies the fabric geometry (checked against the snapshot)
  /// and the run-local wiring — audit mode, trace request, shards and
  /// threads — which may legitimately differ from the saving run.
  /// Throws SnapshotError on any mismatch or corruption.
  NetworkRun(const NetworkScenarioConfig& config, const SnapshotFile& file);

  ~NetworkRun();
  NetworkRun(const NetworkRun&) = delete;
  NetworkRun& operator=(const NetworkRun&) = delete;

  [[nodiscard]] Cycle now() const { return engine_.now(); }
  [[nodiscard]] bool done() const;

  /// Advances the run to cycle `target` (or to completion, whichever is
  /// first).  Segmentation is invisible: advance_to(k) then
  /// advance_to(N) computes the identical run as advance_to(N) alone.
  void advance_to(Cycle target);
  void run_to_completion();

  /// Serializes the full run (META + NCFG + NNET + NSRC) as a checkpoint
  /// payload; `extra`, when set, appends caller-owned trailing sections
  /// (the soak harness stores its steady-state tracker this way).
  using ExtraSections = std::function<void(SnapshotWriter&)>;
  [[nodiscard]] std::vector<std::uint8_t> checkpoint_payload(
      const ExtraSections& extra = {}) const;
  /// Writes the checkpoint container (payload + wormsched-manifest-v1
  /// provenance JSON) to `path`.  Throws std::runtime_error on I/O error.
  void save_checkpoint(const std::string& path,
                       const ExtraSections& extra = {}) const;
  /// In-memory container (tests and soak chaining).
  [[nodiscard]] SnapshotFile make_snapshot_file(
      const ExtraSections& extra = {}) const;

  /// Finalizes auditors/trace exports and collects the result.  Call once,
  /// after the run is done (or after the last segment of interest).
  [[nodiscard]] NetworkScenarioResult finish();

  [[nodiscard]] wormhole::Network& network() { return *net_; }
  [[nodiscard]] const wormhole::Network& network() const { return *net_; }
  [[nodiscard]] const wormhole::NetworkTrafficSource& source() const {
    return *source_;
  }
  [[nodiscard]] validate::AuditLog& audit_log() { return *audit_log_; }
  /// Whether this run was restored from a checkpoint, and from where.
  [[nodiscard]] bool restored() const { return restored_; }
  [[nodiscard]] const obs::TraceProvenance& trace_provenance() const {
    return trace_provenance_;
  }
  [[nodiscard]] std::uint64_t original_seed() const { return original_seed_; }
  [[nodiscard]] std::uint32_t restore_count() const { return restore_count_; }

 private:
  void build();
  void wire_observers();

  NetworkScenarioConfig config_;  // effective (faults resolved, seed applied)
  std::optional<validate::ScheduledFaults> faults_;
  std::unique_ptr<wormhole::Network> net_;
  std::unique_ptr<wormhole::NetworkTrafficSource> source_;
  std::optional<obs::TraceSink> trace_sink_;
  validate::AuditLog private_log_;
  validate::AuditLog* audit_log_ = nullptr;
  std::optional<validate::NetworkAuditor> net_auditor_;
  std::vector<std::unique_ptr<validate::ErrAuditor>> err_auditors_;
  bool violation_window_dumped_ = false;
  sim::Engine engine_;
  Cycle end_cycle_ = 0;
  bool finished_ = false;

  std::uint64_t original_seed_ = 0;
  std::uint32_t restore_count_ = 0;
  bool restored_ = false;
  obs::TraceProvenance trace_provenance_;
};

/// --- Scenario runs --------------------------------------------------------

/// Everything that defines a standalone-scheduler run generatively: the
/// discipline, the workload grammar text it was launched with, the
/// ScenarioConfig, and the trace-fault spec.  All of it travels in the
/// checkpoint so a restore rebuilds the identical arrival trace.
struct ScenarioSpec {
  std::string scheduler = "err";
  std::string workload_text;
  ScenarioConfig config;
  validate::FaultSpec faults;
};

/// Resumable standalone-scheduler run; run_scenario() stays the
/// single-segment wrapper for trace-supplied callers.
class ScenarioRun {
 public:
  /// Fresh run: expands `spec.workload_text`, generates the trace with
  /// `spec.config.seed`, applies trace faults.
  explicit ScenarioRun(const ScenarioSpec& spec);

  /// Restored run: the sim-defining parts of the spec (scheduler,
  /// workload, horizon, drain, seed, weights, faults) are read from the
  /// checkpoint; `wiring` contributes only audit/trace attachments.
  ScenarioRun(const ScenarioSpec& wiring, const SnapshotFile& file);

  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  [[nodiscard]] Cycle now() const { return t_; }
  [[nodiscard]] bool done() const { return done_; }
  void advance_to(Cycle target);
  void run_to_completion();

  [[nodiscard]] std::vector<std::uint8_t> checkpoint_payload() const;
  void save_checkpoint(const std::string& path) const;
  [[nodiscard]] SnapshotFile make_snapshot_file() const;

  /// Finalizes the run (activity windows, audit counters) and yields the
  /// result.  Call once, when done.
  [[nodiscard]] ScenarioResult finish();

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] bool restored() const { return restored_; }
  [[nodiscard]] const obs::TraceProvenance& trace_provenance() const {
    return trace_provenance_;
  }

 private:
  void build();
  void run_cycle();

  ScenarioSpec spec_;
  traffic::Trace trace_;
  std::unique_ptr<core::Scheduler> scheduler_;
  std::optional<ScenarioResult> result_;
  std::optional<validate::AuditLog> local_log_;
  std::optional<validate::ErrAuditor> auditor_;
  std::size_t trace_round_ = 0;

  // Observer plumbing (stable addresses; scheduler_ holds the chain).
  struct Observers;
  std::unique_ptr<Observers> observers_;

  std::size_t next_arrival_ = 0;
  PacketId::rep_type next_packet_id_ = 0;
  Cycle t_ = 0;
  bool done_ = false;
  bool finished_ = false;

  std::uint64_t original_seed_ = 0;
  std::uint32_t restore_count_ = 0;
  bool restored_ = false;
  obs::TraceProvenance trace_provenance_;
};

}  // namespace wormsched::harness
