#include "harness/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "core/err.hpp"
#include "core/packet.hpp"
#include "harness/workload_parse.hpp"
#include "metrics/delay.hpp"
#include "obs/manifest.hpp"
#include "wormhole/arbiter.hpp"

namespace wormsched::harness {

namespace {

/// --- Config (de)serialization helpers ------------------------------------
///
/// The generative configuration travels inside the checkpoint so a restore
/// needs nothing beyond the file (and the run-local wiring).  Enum values
/// are range-checked on load: a corrupted-but-CRC-valid file must fail
/// with SnapshotError, never reach a switch default.

void save_fault_spec(SnapshotWriter& w, const validate::FaultSpec& s) {
  w.b(s.enabled);
  w.u64(s.seed);
  w.u64(s.window);
  w.f64(s.link_stall_rate);
  w.u64(s.link_stall_cycles);
  w.f64(s.credit_stall_rate);
  w.u64(s.credit_stall_cycles);
  w.f64(s.churn_rate);
  w.f64(s.burst_rate);
  w.f64(s.burst_multiplier);
  w.u32(s.num_nodes);
  w.u64(s.trace_jitter_max);
}

validate::FaultSpec load_fault_spec(SnapshotReader& r) {
  validate::FaultSpec s;
  s.enabled = r.b();
  s.seed = r.u64();
  s.window = r.u64();
  s.link_stall_rate = r.f64();
  s.link_stall_cycles = r.u64();
  s.credit_stall_rate = r.f64();
  s.credit_stall_cycles = r.u64();
  s.churn_rate = r.f64();
  s.burst_rate = r.f64();
  s.burst_multiplier = r.f64();
  s.num_nodes = r.u32();
  s.trace_jitter_max = r.u64();
  if (s.enabled && s.window == 0)
    throw SnapshotError("checkpoint fault spec has a zero epoch window");
  return s;
}

void save_length_spec(SnapshotWriter& w, const traffic::LengthSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.i64(s.lo);
  w.i64(s.hi);
  w.f64(s.lambda);
  w.f64(s.bimodal_small_prob);
}

traffic::LengthSpec load_length_spec(SnapshotReader& r) {
  traffic::LengthSpec s;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(traffic::LengthSpec::Kind::kBimodal))
    throw SnapshotError("checkpoint length law kind out of range");
  s.kind = static_cast<traffic::LengthSpec::Kind>(kind);
  s.lo = r.i64();
  s.hi = r.i64();
  s.lambda = r.f64();
  s.bimodal_small_prob = r.f64();
  return s;
}

void save_traffic_config(SnapshotWriter& w,
                         const wormhole::NetworkTrafficSource::Config& c) {
  w.f64(c.packets_per_node_per_cycle);
  save_length_spec(w, c.lengths);
  w.u8(static_cast<std::uint8_t>(c.pattern.kind));
  w.f64(c.pattern.hotspot_fraction);
  w.u32(c.pattern.hotspot.value());
  w.u64(c.inject_until);
  w.u64(c.seed);
}

wormhole::NetworkTrafficSource::Config load_traffic_config(SnapshotReader& r) {
  wormhole::NetworkTrafficSource::Config c;
  c.packets_per_node_per_cycle = r.f64();
  c.lengths = load_length_spec(r);
  const std::uint8_t pattern = r.u8();
  if (pattern >
      static_cast<std::uint8_t>(wormhole::PatternSpec::Kind::kNeighbor))
    throw SnapshotError("checkpoint traffic pattern kind out of range");
  c.pattern.kind = static_cast<wormhole::PatternSpec::Kind>(pattern);
  c.pattern.hotspot_fraction = r.f64();
  c.pattern.hotspot = NodeId(r.u32());
  c.inject_until = r.u64();
  if (c.inject_until >= kCycleMax)
    throw SnapshotError("checkpoint injection window is unbounded");
  c.seed = r.u64();
  return c;
}

std::string manifest_to_json(const obs::RunManifest& manifest) {
  std::ostringstream os;
  manifest.write(os);
  return os.str();
}

}  // namespace

CheckpointProvenance read_checkpoint_provenance(const SnapshotFile& file) {
  if (file.version != kSnapshotFormatVersion)
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(file.version));
  SnapshotReader r(file.payload);
  r.enter_section(kCkptMetaTag);
  CheckpointProvenance prov;
  prov.kind = r.str();
  prov.original_seed = r.u64();
  prov.saved_git_sha = r.str();
  prov.restore_count = r.u32();
  prov.saved_cycle = r.u64();
  r.leave_section();
  if (prov.kind != "network" && prov.kind != "scenario")
    throw SnapshotError("checkpoint kind \"" + prov.kind +
                        "\" is not a known run kind");
  return prov;
}

SnapshotFile load_checkpoint_or_exit(const std::string& path) {
  try {
    return read_snapshot_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wormsched: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

/// --- NetworkRun -----------------------------------------------------------

NetworkRun::NetworkRun(const NetworkScenarioConfig& config, std::uint64_t seed)
    : config_(config), original_seed_(seed) {
  WS_CHECK_MSG(config_.traffic.inject_until < kCycleMax,
               "network run needs a finite injection window");
  if (config_.faults.enabled) {
    // An independent fault schedule per run seed, sized to the topology.
    config_.faults.seed += seed;
    config_.faults.num_nodes = config_.network.topo.num_nodes();
  }
  config_.traffic.seed = seed;
  build();
  wire_observers();
}

NetworkRun::NetworkRun(const NetworkScenarioConfig& config,
                       const SnapshotFile& file)
    : config_(config),
      engine_(read_checkpoint_provenance(file).saved_cycle) {
  const CheckpointProvenance prov = read_checkpoint_provenance(file);
  if (prov.kind != "network")
    throw SnapshotError("expected a network checkpoint, found kind \"" +
                        prov.kind + "\"");
  original_seed_ = prov.original_seed;
  restore_count_ = prov.restore_count + 1;
  restored_ = true;
  trace_provenance_.restored = true;
  trace_provenance_.restored_from_sha = prov.saved_git_sha;
  trace_provenance_.original_seed = prov.original_seed;
  trace_provenance_.restore_cycle = prov.saved_cycle;
  end_cycle_ = prov.saved_cycle;

  SnapshotReader r(file.payload);
  r.enter_section(kCkptMetaTag);
  r.leave_section();  // parsed above
  r.enter_section(kCkptNetConfigTag);
  config_.drain_factor = r.u64();
  config_.traffic = load_traffic_config(r);
  config_.faults = load_fault_spec(r);
  r.leave_section();
  build();
  wire_observers();
  r.enter_section(kCkptNetworkTag);
  net_->restore_state(r);
  r.leave_section();
  r.enter_section(kCkptSourceTag);
  source_->restore_state(r);
  r.leave_section();
  // Trailing sections (e.g. SOAK) belong to the caller; leave them unread.
}

NetworkRun::~NetworkRun() = default;

void NetworkRun::build() {
  wormhole::NetworkConfig net_config = config_.network;
  if (config_.faults.enabled) {
    faults_.emplace(config_.faults);
    net_config.faults = &*faults_;
  }
  net_ = std::make_unique<wormhole::Network>(net_config);
  if (config_.perf_counters != nullptr)
    net_->set_perf_counters(config_.perf_counters);
  if (config_.trace.enabled()) {
    obs::TraceSink::Options sink_options;
    sink_options.capacity = config_.trace.capacity;
    sink_options.mask = config_.trace.mask;
    trace_sink_.emplace(sink_options);
    net_->set_trace_sink(&*trace_sink_);
  }
  wormhole::NetworkTrafficSource::Config traffic = config_.traffic;
  traffic.faults = net_config.faults;
  source_ = std::make_unique<wormhole::NetworkTrafficSource>(*net_, traffic);
  audit_log_ =
      config_.audit_log != nullptr ? config_.audit_log : &private_log_;
  engine_.add_component(*source_);
  engine_.add_component(*net_);
}

void NetworkRun::wire_observers() {
  obs::TraceSink* sink = trace_sink_ ? &*trace_sink_ : nullptr;

  // Auditors: the fabric auditor sees every cycle, and each ERR output
  // arbiter streams its opportunities into its own paper-bounds auditor;
  // all of them share one violation log.  Tracing subscribes to the same
  // single-slot opportunity stream, so when both are on one combined
  // listener per arbiter feeds auditor then sink.  Both auditors
  // tolerate joining mid-stream (they baseline off the first observed
  // state), which is what makes attaching them to a restored fabric safe.
  const bool trace_opportunities =
      sink != nullptr && sink->wants(obs::EventKind::kOpportunity);
  if (config_.audit || trace_opportunities) {
    if (config_.audit) {
      net_auditor_.emplace(config_.audit_config, *audit_log_);
      net_->attach_observer(&*net_auditor_);
    }
    const std::uint32_t nodes = net_->topology().num_nodes();
    const std::uint32_t vcs = config_.network.router.num_vcs;
    const std::size_t requesters =
        static_cast<std::size_t>(wormhole::kNumDirections) * vcs;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (std::uint32_t d = 0; d < wormhole::kNumDirections; ++d) {
        for (std::uint32_t cls = 0; cls < vcs; ++cls) {
          auto* err = dynamic_cast<wormhole::ErrArbiter*>(
              &net_->router(NodeId(n)).arbiter(
                  static_cast<wormhole::Direction>(d), cls));
          if (err == nullptr) continue;
          validate::ErrAuditor* audit_ptr = nullptr;
          if (config_.audit && config_.audit_err) {
            auto auditor = std::make_unique<validate::ErrAuditor>(
                requesters, validate::ErrAuditorConfig{}, *audit_log_);
            audit_ptr = auditor.get();
            err_auditors_.push_back(std::move(auditor));
          }
          if (trace_opportunities) {
            const std::uint32_t unit = d * vcs + cls;
            err->policy().set_opportunity_listener(
                [sink, audit_ptr, n, unit](const core::ErrOpportunity& op) {
                  if (audit_ptr != nullptr) audit_ptr->on_opportunity(op);
                  sink->record(obs::TraceEvent::opportunity(
                      sink->now(), op.flow.value(), op.round, op.allowance,
                      op.surplus_count, n, unit));
                });
          } else if (audit_ptr != nullptr) {
            audit_ptr->attach(err->policy());
          }
        }
      }
    }
  }

  // A violation enters the trace ring and — once per run — dumps the
  // event window around it while the evidence is still in the ring.  A
  // restored run's dump carries the snapshot provenance (saving build's
  // SHA, original seed, restore cycle) so the exact run can be rebuilt.
  if (sink != nullptr) {
    audit_log_->set_on_report([this, sink](const validate::Violation& v) {
      sink->record(obs::TraceEvent::violation(
          sink->now(), sink->note(v.check + ": " + v.detail)));
      if (!violation_window_dumped_ && !config_.trace.chrome_path.empty()) {
        violation_window_dumped_ = true;
        obs::write_chrome_trace_file(
            config_.trace.chrome_path + ".violation.json", *sink,
            restored_ ? &trace_provenance_ : nullptr);
      }
    });
  }
}

bool NetworkRun::done() const {
  const Cycle inject_end = config_.traffic.inject_until;
  if (engine_.now() < inject_end) return false;
  if (engine_.now() >= inject_end * config_.drain_factor) return true;
  return source_->idle() && net_->idle() && engine_.pending_events() == 0;
}

void NetworkRun::advance_to(Cycle target) {
  const Cycle inject_end = config_.traffic.inject_until;
  const Cycle drain_cap = inject_end * config_.drain_factor;
  if (engine_.now() < inject_end)
    engine_.run_until(std::min(target, inject_end));
  if (engine_.now() >= inject_end)
    end_cycle_ = engine_.run_until_idle(std::min(target, drain_cap));
}

void NetworkRun::run_to_completion() { advance_to(kCycleMax); }

std::vector<std::uint8_t> NetworkRun::checkpoint_payload(
    const ExtraSections& extra) const {
  SnapshotWriter w;
  w.begin_section(kCkptMetaTag);
  w.str("network");
  w.u64(original_seed_);
  w.str(obs::current_git_sha());
  w.u32(restore_count_);
  w.u64(engine_.now());
  w.end_section();
  w.begin_section(kCkptNetConfigTag);
  w.u64(config_.drain_factor);
  save_traffic_config(w, config_.traffic);
  save_fault_spec(w, config_.faults);
  w.end_section();
  w.begin_section(kCkptNetworkTag);
  net_->save_state(w);
  w.end_section();
  w.begin_section(kCkptSourceTag);
  source_->save_state(w);
  w.end_section();
  if (extra) extra(w);
  return w.bytes();
}

SnapshotFile NetworkRun::make_snapshot_file(const ExtraSections& extra) const {
  obs::RunManifest manifest;
  manifest.tool = "wormsched checkpoint";
  manifest.seed = original_seed_;
  manifest.add_config("kind", "network");
  manifest.add_config("restore_count", std::to_string(restore_count_));
  manifest.add_config("traffic", config_.traffic.pattern.describe());
  manifest.add_config("faults", config_.faults.describe());
  manifest.add_counter("saved_cycle", static_cast<double>(engine_.now()));
  manifest.add_counter("generated_packets",
                       static_cast<double>(source_->generated()));
  manifest.add_counter("delivered_packets",
                       static_cast<double>(net_->delivered_packets()));
  manifest.violations = audit_log_->count();
  SnapshotFile file;
  file.manifest_json = manifest_to_json(manifest);
  file.payload = checkpoint_payload(extra);
  return file;
}

void NetworkRun::save_checkpoint(const std::string& path,
                                 const ExtraSections& extra) const {
  const SnapshotFile file = make_snapshot_file(extra);
  write_snapshot_file(path, file.manifest_json, file.payload);
}

NetworkScenarioResult NetworkRun::finish() {
  WS_CHECK_MSG(!finished_, "NetworkRun::finish() called twice");
  finished_ = true;
  NetworkScenarioResult result;
  result.end_cycle = end_cycle_;
  result.generated_packets = source_->generated();
  result.delivered_packets = net_->delivered_packets();
  result.delivered_flits = net_->delivered_flits();
  result.latency = net_->latency_overall();
  result.p99_latency = net_->latency_quantiles().quantile(0.99);
  if (config_.audit) {
    // Simulation-end flush: audits the tail window a sampled cadence
    // never reaches, and cross-checks the incremental ledgers one last
    // time against the full-scan oracle.
    net_auditor_->finish(end_cycle_, *net_);
    result.audit_checks = net_auditor_->checks_run();
    result.audit_full_rescans = net_auditor_->full_rescans();
    result.audit_violations = audit_log_->count();
    for (const auto& auditor : err_auditors_)
      result.audit_opportunities += auditor->opportunities();
    net_->detach_observer(&*net_auditor_);
  }
  if (trace_sink_) {
    result.trace_recorded = trace_sink_->recorded();
    result.trace_dropped = trace_sink_->dropped();
    const obs::TraceProvenance* prov =
        restored_ ? &trace_provenance_ : nullptr;
    if (!config_.trace.chrome_path.empty())
      obs::write_chrome_trace_file(config_.trace.chrome_path, *trace_sink_,
                                   prov);
    if (!config_.trace.timeline_csv.empty())
      obs::write_service_timeline_csv_file(config_.trace.timeline_csv,
                                           *trace_sink_);
    audit_log_->set_on_report({});
  }
  return result;
}

/// --- ScenarioRun ----------------------------------------------------------

namespace {

/// Scenario-internal observer: records head-flit instants and the largest
/// served packet (mirrors run_scenario's probe).
class CkptRunProbe final : public core::SchedulerObserver {
 public:
  explicit CkptRunProbe(ScenarioResult& result) : result_(result) {}

  void on_flit(Cycle now, const core::FlitEvent& flit) override {
    if (flit.is_head) result_.service_starts.push_back(now);
  }
  void on_packet_departure(Cycle, const core::Packet& packet) override {
    result_.max_served_packet =
        std::max(result_.max_served_packet, packet.length);
  }

 private:
  ScenarioResult& result_;
};

/// Mirrors scheduler decisions into the trace sink (ERR dequeues carry
/// the serving flow's allowance and surplus count).
class CkptTraceObserver final : public core::SchedulerObserver {
 public:
  CkptTraceObserver(obs::TraceSink& sink, const core::ErrScheduler* err)
      : sink_(sink), err_(err) {}

  void on_packet_arrival(Cycle now, const core::Packet& p) override {
    sink_.record(obs::TraceEvent::packet_enqueue(now, p.flow.value(),
                                                 p.id.value(), p.length));
  }
  void on_packet_departure(Cycle now, const core::Packet& p) override {
    double allowance = 0.0;
    double surplus = 0.0;
    if (err_ != nullptr) {
      allowance = err_->policy().allowance();
      surplus = err_->policy().surplus_count(p.flow);
    }
    sink_.record(obs::TraceEvent::packet_dequeue(
        now, p.flow.value(), p.id.value(), p.length, allowance, surplus));
  }

 private:
  obs::TraceSink& sink_;
  const core::ErrScheduler* err_;
};

}  // namespace

struct ScenarioRun::Observers {
  explicit Observers(ScenarioResult& result) : probe(result) {}

  CkptRunProbe probe;
  std::optional<CkptTraceObserver> trace_observer;
  metrics::ObserverChain chain;
};

ScenarioRun::ScenarioRun(const ScenarioSpec& spec) : spec_(spec) {
  original_seed_ = spec_.config.seed;
  build();
}

ScenarioRun::ScenarioRun(const ScenarioSpec& wiring, const SnapshotFile& file)
    : spec_(wiring) {
  const CheckpointProvenance prov = read_checkpoint_provenance(file);
  if (prov.kind != "scenario")
    throw SnapshotError("expected a scenario checkpoint, found kind \"" +
                        prov.kind + "\"");
  original_seed_ = prov.original_seed;
  restore_count_ = prov.restore_count + 1;
  restored_ = true;
  trace_provenance_.restored = true;
  trace_provenance_.restored_from_sha = prov.saved_git_sha;
  trace_provenance_.original_seed = prov.original_seed;
  trace_provenance_.restore_cycle = prov.saved_cycle;

  SnapshotReader r(file.payload);
  r.enter_section(kCkptMetaTag);
  r.leave_section();  // parsed above
  r.enter_section(kCkptScenConfigTag);
  spec_.scheduler = r.str();
  spec_.workload_text = r.str();
  spec_.config.horizon = r.u64();
  spec_.config.drain = r.b();
  spec_.config.seed = r.u64();
  spec_.config.flit_bytes = r.u64();
  spec_.config.sched.drr_quantum = r.i64();
  spec_.config.sched.err_reset_on_idle = r.b();
  restore_sequence(r, spec_.config.sched.perr_priorities,
                   [](SnapshotReader& in) { return in.u32(); });
  restore_doubles(r, spec_.config.weights);
  spec_.faults = load_fault_spec(r);
  r.leave_section();
  build();
  r.enter_section(kCkptScenStateTag);
  t_ = r.u64();
  next_arrival_ = r.u64();
  if (next_arrival_ > trace_.entries.size())
    throw SnapshotError("scenario checkpoint arrival cursor out of range");
  next_packet_id_ = r.u64();
  done_ = r.b();
  trace_round_ = r.u64();
  scheduler_->restore_state(r);
  result_->service_log.restore(r);
  result_->activity.restore(r);
  result_->delays.restore(r);
  restore_sequence(r, result_->service_starts,
                   [](SnapshotReader& in) { return in.u64(); });
  result_->max_served_packet = r.i64();
  r.leave_section();
}

ScenarioRun::~ScenarioRun() = default;

void ScenarioRun::build() {
  std::string error;
  const std::optional<WorkloadParse> parsed =
      parse_workload(spec_.workload_text, &error);
  if (!parsed)
    throw SnapshotError("checkpoint workload \"" + spec_.workload_text +
                        "\" failed to parse: " + error);
  if (spec_.config.weights.empty()) spec_.config.weights = parsed->weights;

  trace_ = traffic::generate_trace(parsed->spec, spec_.config.horizon,
                                   spec_.config.seed);
  trace_ = validate::apply_trace_faults(spec_.faults, trace_);
  WS_CHECK(trace_.num_flows > 0);

  core::SchedulerParams params = spec_.config.sched;
  params.num_flows = trace_.num_flows;
  scheduler_ = core::make_scheduler(spec_.scheduler, params);
  WS_CHECK_MSG(scheduler_ != nullptr, "unknown scheduler name");
  if (!spec_.config.weights.empty()) {
    WS_CHECK(spec_.config.weights.size() == trace_.num_flows);
    for (std::size_t i = 0; i < spec_.config.weights.size(); ++i)
      scheduler_->set_weight(FlowId(static_cast<FlowId::rep_type>(i)),
                             spec_.config.weights[i]);
  }

  result_.emplace(trace_.num_flows, spec_.config.flit_bytes);
  result_->scheduler_name = std::string(scheduler_->name());

  auto* err = dynamic_cast<core::ErrScheduler*>(scheduler_.get());
  if (spec_.config.audit && err != nullptr) {
    validate::AuditLog* log = spec_.config.audit_log;
    if (log == nullptr) log = &local_log_.emplace();
    validate::ErrAuditorConfig audit_config;
    audit_config.reset_on_idle = spec_.config.sched.err_reset_on_idle;
    auditor_.emplace(trace_.num_flows, audit_config, *log);
    auditor_->attach(err->policy());
  }

  obs::TraceSink* sink = spec_.config.trace;
  if (sink != nullptr && err != nullptr) {
    validate::ErrAuditor* audit_ptr = auditor_ ? &*auditor_ : nullptr;
    err->policy().set_opportunity_listener(
        [this, sink, audit_ptr](const core::ErrOpportunity& op) {
          if (audit_ptr != nullptr) audit_ptr->on_opportunity(op);
          const Cycle now = sink->now();
          if (op.round != trace_round_) {
            trace_round_ = op.round;
            sink->record(obs::TraceEvent::round_boundary(
                now, op.round, op.previous_max_sc));
          }
          sink->record(obs::TraceEvent::opportunity(
              now, op.flow.value(), op.round, op.allowance,
              op.surplus_count));
        });
  }

  observers_ = std::make_unique<Observers>(*result_);
  observers_->chain.add(result_->service_log);
  observers_->chain.add(result_->delays);
  observers_->chain.add(observers_->probe);
  if (sink != nullptr)
    observers_->chain.add(observers_->trace_observer.emplace(*sink, err));
  scheduler_->set_observer(&observers_->chain);
}

void ScenarioRun::run_cycle() {
  obs::TraceSink* sink = spec_.config.trace;
  if (sink != nullptr) sink->set_now(t_);
  // Deliver this cycle's arrivals, then offer one transmission slot —
  // the paper's service model (one flit dequeued per cycle).
  while (next_arrival_ < trace_.entries.size() &&
         trace_.entries[next_arrival_].cycle == t_) {
    const traffic::TraceEntry& e = trace_.entries[next_arrival_];
    scheduler_->enqueue(t_, core::Packet{.id = PacketId(next_packet_id_++),
                                         .flow = e.flow,
                                         .length = e.length,
                                         .arrival = t_});
    ++next_arrival_;
  }
  (void)scheduler_->pull_flit(t_);
  // Activity snapshot after arrivals and service: a flow is active while
  // its queue is nonempty.
  for (std::size_t i = 0; i < trace_.num_flows; ++i) {
    const FlowId flow(static_cast<FlowId::rep_type>(i));
    result_->activity.record(t_, flow, scheduler_->queue_length(flow) > 0);
  }
  ++t_;
  if (t_ >= spec_.config.horizon) {
    const bool arrivals_done = next_arrival_ >= trace_.entries.size();
    if (!spec_.config.drain) {
      done_ = true;
    } else if (arrivals_done && scheduler_->idle()) {
      done_ = true;
    }
  }
}

void ScenarioRun::advance_to(Cycle target) {
  while (!done_ && t_ < target) run_cycle();
}

void ScenarioRun::run_to_completion() {
  while (!done_) run_cycle();
}

std::vector<std::uint8_t> ScenarioRun::checkpoint_payload() const {
  SnapshotWriter w;
  w.begin_section(kCkptMetaTag);
  w.str("scenario");
  w.u64(original_seed_);
  w.str(obs::current_git_sha());
  w.u32(restore_count_);
  w.u64(t_);
  w.end_section();
  w.begin_section(kCkptScenConfigTag);
  w.str(spec_.scheduler);
  w.str(spec_.workload_text);
  w.u64(spec_.config.horizon);
  w.b(spec_.config.drain);
  w.u64(spec_.config.seed);
  w.u64(spec_.config.flit_bytes);
  w.i64(spec_.config.sched.drr_quantum);
  w.b(spec_.config.sched.err_reset_on_idle);
  save_sequence(w, spec_.config.sched.perr_priorities,
                [](SnapshotWriter& o, std::uint32_t p) { o.u32(p); });
  save_doubles(w, spec_.config.weights);
  save_fault_spec(w, spec_.faults);
  w.end_section();
  w.begin_section(kCkptScenStateTag);
  w.u64(t_);
  w.u64(next_arrival_);
  w.u64(next_packet_id_);
  w.b(done_);
  w.u64(trace_round_);
  scheduler_->save_state(w);
  result_->service_log.save(w);
  result_->activity.save(w);
  result_->delays.save(w);
  save_sequence(w, result_->service_starts,
                [](SnapshotWriter& o, Cycle c) { o.u64(c); });
  w.i64(result_->max_served_packet);
  w.end_section();
  return w.bytes();
}

SnapshotFile ScenarioRun::make_snapshot_file() const {
  obs::RunManifest manifest;
  manifest.tool = "wormsched checkpoint";
  manifest.seed = original_seed_;
  manifest.add_config("kind", "scenario");
  manifest.add_config("scheduler", spec_.scheduler);
  manifest.add_config("workload", spec_.workload_text);
  manifest.add_config("restore_count", std::to_string(restore_count_));
  manifest.add_counter("saved_cycle", static_cast<double>(t_));
  SnapshotFile file;
  file.manifest_json = manifest_to_json(manifest);
  file.payload = checkpoint_payload();
  return file;
}

void ScenarioRun::save_checkpoint(const std::string& path) const {
  const SnapshotFile file = make_snapshot_file();
  write_snapshot_file(path, file.manifest_json, file.payload);
}

ScenarioResult ScenarioRun::finish() {
  WS_CHECK_MSG(!finished_, "ScenarioRun::finish() called twice");
  finished_ = true;
  result_->end_cycle = t_;
  result_->activity.finish(t_);
  result_->residual_backlog = scheduler_->backlog_flits();
  if (auditor_.has_value()) {
    result_->audit_opportunities = auditor_->opportunities();
    validate::AuditLog* log = spec_.config.audit_log != nullptr
                                  ? spec_.config.audit_log
                                  : &*local_log_;
    result_->audit_violations = log->count();
  }
  scheduler_->set_observer(nullptr);
  return std::move(*result_);
}

}  // namespace wormsched::harness
