// Multi-seed sweeps with summary statistics.
//
// Single-run numbers from a stochastic workload are noisy; the benches
// that report deltas between schedulers (Fig. 5, ablations) average over
// seeds.  SweepResult aggregates any named scalar metric across repeats
// and exposes mean / stddev / extremes, so benches can print confidence
// information instead of point estimates.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/scenario.hpp"
#include "validate/faults.hpp"

namespace wormsched::harness {

/// Aggregated metrics from repeating one scenario across seeds.
class SweepResult {
 public:
  void add(const std::string& metric, double value) {
    stats_[metric].add(value);
  }

  [[nodiscard]] bool has(const std::string& metric) const {
    return stats_.count(metric) != 0;
  }
  [[nodiscard]] const RunningStat& stat(const std::string& metric) const {
    return stats_.at(metric);
  }
  [[nodiscard]] double mean(const std::string& metric) const {
    return stats_.at(metric).mean();
  }
  [[nodiscard]] double stddev(const std::string& metric) const {
    return stats_.at(metric).stddev();
  }
  /// Mean +/- one standard deviation, formatted for tables.
  [[nodiscard]] std::string summary(const std::string& metric,
                                    int digits = 1) const;

  [[nodiscard]] std::vector<std::string> metrics() const;

 private:
  std::map<std::string, RunningStat> stats_;
};

/// Extracts named metrics from one finished run.
using MetricExtractor =
    std::function<void(const ScenarioResult&, SweepResult&)>;

/// How a multi-seed sweep runs.  Seeds are independent simulations, so
/// they fan out across `jobs` workers; the per-seed results are collected
/// into an index-ordered buffer and folded serially, which makes the
/// aggregate byte-identical for every jobs value (the determinism
/// contract docs/PERFORMANCE.md spells out).
struct SweepOptions {
  std::uint64_t base_seed = 1;
  std::size_t seeds = 1;
  std::size_t jobs = 1;  // worker threads; 0 = one per hardware thread
  /// Fault injection: when enabled, each seed's trace (standalone sweeps)
  /// or fabric (network sweeps) is perturbed by a deterministic fault
  /// schedule derived from faults.seed + k, so fault patterns vary across
  /// seeds but reproduce exactly for a given (base_seed, faults.seed).
  validate::FaultSpec faults;
  /// Run the runtime invariant auditor on every seed.  Violations abort
  /// in Debug; in Release the sweep folds an "audit_violations" metric.
  bool audit = false;
};

/// Runs `scheduler_name` over `options.seeds` independently generated
/// instances of `workload` (seed k uses base_seed + k) and aggregates the
/// extracted metrics.  The per-seed trace generation matches
/// run_scenario's convention, so two sweeps with the same base seed see
/// identical traffic.
[[nodiscard]] SweepResult sweep_scenario(std::string_view scheduler_name,
                                         const ScenarioConfig& config,
                                         const traffic::WorkloadSpec& workload,
                                         const SweepOptions& options,
                                         const MetricExtractor& extract);

/// Serial convenience overload (jobs = 1), kept for the existing callers.
[[nodiscard]] SweepResult sweep_scenario(std::string_view scheduler_name,
                                         ScenarioConfig config,
                                         const traffic::WorkloadSpec& workload,
                                         std::uint64_t base_seed,
                                         std::size_t seeds,
                                         const MetricExtractor& extract);

}  // namespace wormsched::harness
