#include "harness/scenario.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "core/err.hpp"
#include "core/packet.hpp"
#include "validate/err_auditor.hpp"

namespace wormsched::harness {

namespace {

/// Scenario-internal observer: records head-flit instants and the largest
/// served packet.
class RunProbe final : public core::SchedulerObserver {
 public:
  explicit RunProbe(ScenarioResult& result) : result_(result) {}

  void on_flit(Cycle now, const core::FlitEvent& flit) override {
    if (flit.is_head) result_.service_starts.push_back(now);
  }
  void on_packet_departure(Cycle, const core::Packet& packet) override {
    result_.max_served_packet =
        std::max(result_.max_served_packet, packet.length);
  }

 private:
  ScenarioResult& result_;
};

/// Mirrors scheduler decisions into the trace sink.  For ERR schedulers a
/// dequeue carries the serving flow's allowance and surplus count at the
/// decision instant (both 0 for other disciplines).
class TraceObserver final : public core::SchedulerObserver {
 public:
  TraceObserver(obs::TraceSink& sink, const core::ErrScheduler* err)
      : sink_(sink), err_(err) {}

  void on_packet_arrival(Cycle now, const core::Packet& p) override {
    sink_.record(
        obs::TraceEvent::packet_enqueue(now, p.flow.value(), p.id.value(),
                                        p.length));
  }
  void on_packet_departure(Cycle now, const core::Packet& p) override {
    double allowance = 0.0;
    double surplus = 0.0;
    if (err_ != nullptr) {
      allowance = err_->policy().allowance();
      surplus = err_->policy().surplus_count(p.flow);
    }
    sink_.record(obs::TraceEvent::packet_dequeue(
        now, p.flow.value(), p.id.value(), p.length, allowance, surplus));
  }

 private:
  obs::TraceSink& sink_;
  const core::ErrScheduler* err_;
};

}  // namespace

ScenarioResult::ScenarioResult(std::size_t num_flows, Bytes flit_bytes)
    : service_log(num_flows, flit_bytes),
      activity(num_flows),
      delays(num_flows) {}

ScenarioResult run_scenario(std::string_view scheduler_name,
                            const ScenarioConfig& config,
                            const traffic::Trace& trace) {
  WS_CHECK(trace.num_flows > 0);
  core::SchedulerParams params = config.sched;
  params.num_flows = trace.num_flows;
  auto scheduler = core::make_scheduler(scheduler_name, params);
  WS_CHECK_MSG(scheduler != nullptr, "unknown scheduler name");
  if (!config.weights.empty()) {
    WS_CHECK(config.weights.size() == trace.num_flows);
    for (std::size_t i = 0; i < config.weights.size(); ++i)
      scheduler->set_weight(FlowId(static_cast<FlowId::rep_type>(i)),
                            config.weights[i]);
  }

  ScenarioResult result(trace.num_flows, config.flit_bytes);
  result.scheduler_name = std::string(scheduler->name());

  // Runtime invariant auditing: ERR schedulers publish their opportunity
  // stream, which the auditor re-checks against the paper's bounds live.
  auto* err = dynamic_cast<core::ErrScheduler*>(scheduler.get());
  std::optional<validate::AuditLog> local_log;
  std::optional<validate::ErrAuditor> auditor;
  if (config.audit && err != nullptr) {
    validate::AuditLog* log = config.audit_log;
    if (log == nullptr) log = &local_log.emplace();
    validate::ErrAuditorConfig audit_config;
    audit_config.reset_on_idle = config.sched.err_reset_on_idle;
    auditor.emplace(trace.num_flows, audit_config, *log);
    auditor->attach(err->policy());
  }

  // Tracing shares ErrPolicy's single listener slot with the auditor:
  // when both are active one combined lambda feeds the auditor first
  // (attach() above already claimed the slot), then the sink.
  obs::TraceSink* sink = config.trace;
  std::size_t trace_round = 0;
  if (sink != nullptr && err != nullptr) {
    validate::ErrAuditor* audit_ptr = auditor ? &*auditor : nullptr;
    err->policy().set_opportunity_listener(
        [sink, audit_ptr, &trace_round](const core::ErrOpportunity& op) {
          if (audit_ptr != nullptr) audit_ptr->on_opportunity(op);
          const Cycle now = sink->now();
          if (op.round != trace_round) {
            trace_round = op.round;
            sink->record(obs::TraceEvent::round_boundary(
                now, op.round, op.previous_max_sc));
          }
          sink->record(obs::TraceEvent::opportunity(
              now, op.flow.value(), op.round, op.allowance,
              op.surplus_count));
        });
  }

  RunProbe probe(result);
  std::optional<TraceObserver> trace_observer;
  metrics::ObserverChain chain;
  chain.add(result.service_log);
  chain.add(result.delays);
  chain.add(probe);
  if (sink != nullptr) chain.add(trace_observer.emplace(*sink, err));
  scheduler->set_observer(&chain);

  std::size_t next_arrival = 0;
  PacketId::rep_type next_packet_id = 0;
  Cycle t = 0;
  for (;;) {
    if (sink != nullptr) sink->set_now(t);
    // Deliver this cycle's arrivals, then offer one transmission slot —
    // the paper's service model (one flit dequeued per cycle).
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle == t) {
      const traffic::TraceEntry& e = trace.entries[next_arrival];
      scheduler->enqueue(t, core::Packet{.id = PacketId(next_packet_id++),
                                         .flow = e.flow,
                                         .length = e.length,
                                         .arrival = t});
      ++next_arrival;
    }
    (void)scheduler->pull_flit(t);
    // Activity snapshot after arrivals and service: a flow is active while
    // its queue is nonempty (a packet mid-dequeue keeps its queue
    // nonempty in this framework).
    for (std::size_t i = 0; i < trace.num_flows; ++i) {
      const FlowId flow(static_cast<FlowId::rep_type>(i));
      result.activity.record(t, flow, scheduler->queue_length(flow) > 0);
    }
    ++t;
    if (t >= config.horizon) {
      const bool arrivals_done = next_arrival >= trace.entries.size();
      if (!config.drain) break;
      if (arrivals_done && scheduler->idle()) break;
    }
  }
  result.end_cycle = t;
  result.activity.finish(t);
  result.residual_backlog = scheduler->backlog_flits();
  if (auditor.has_value()) {
    result.audit_opportunities = auditor->opportunities();
    validate::AuditLog* log =
        config.audit_log != nullptr ? config.audit_log : &*local_log;
    result.audit_violations = log->count();
  }
  scheduler->set_observer(nullptr);
  return result;
}

ScenarioResult run_scenario(std::string_view scheduler_name,
                            const ScenarioConfig& config,
                            const traffic::WorkloadSpec& workload) {
  const traffic::Trace trace =
      traffic::generate_trace(workload, config.horizon, config.seed);
  return run_scenario(scheduler_name, config, trace);
}

}  // namespace wormsched::harness
