#include "harness/sweep.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace wormsched::harness {

std::string SweepResult::summary(const std::string& metric, int digits) const {
  const RunningStat& s = stats_.at(metric);
  std::ostringstream os;
  os << fixed(s.mean(), digits);
  if (s.count() > 1) os << " +/- " << fixed(s.stddev(), digits);
  return os.str();
}

std::vector<std::string> SweepResult::metrics() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, stat] : stats_) names.push_back(name);
  return names;
}

SweepResult sweep_scenario(std::string_view scheduler_name,
                           ScenarioConfig config,
                           const traffic::WorkloadSpec& workload,
                           std::uint64_t base_seed, std::size_t seeds,
                           const MetricExtractor& extract) {
  WS_CHECK(seeds > 0);
  SweepResult aggregate;
  for (std::size_t k = 0; k < seeds; ++k) {
    config.seed = base_seed + k;
    const traffic::Trace trace =
        traffic::generate_trace(workload, config.horizon, config.seed);
    const ScenarioResult result =
        run_scenario(scheduler_name, config, trace);
    extract(result, aggregate);
  }
  return aggregate;
}

}  // namespace wormsched::harness
