#include "harness/sweep.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace wormsched::harness {

std::string SweepResult::summary(const std::string& metric, int digits) const {
  const RunningStat& s = stats_.at(metric);
  std::ostringstream os;
  os << fixed(s.mean(), digits);
  if (s.count() > 1) os << " +/- " << fixed(s.stddev(), digits);
  return os.str();
}

std::vector<std::string> SweepResult::metrics() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, stat] : stats_) names.push_back(name);
  return names;
}

SweepResult sweep_scenario(std::string_view scheduler_name,
                           const ScenarioConfig& config,
                           const traffic::WorkloadSpec& workload,
                           const SweepOptions& options,
                           const MetricExtractor& extract) {
  WS_CHECK(options.seeds > 0);
  // Each seed is an independent deterministic simulation; the buffer is
  // folded in seed order below, so the aggregate cannot depend on worker
  // scheduling.
  std::vector<std::optional<ScenarioResult>> per_seed(options.seeds);
  ThreadPool pool(options.jobs);
  pool.parallel_for(options.seeds, [&](std::size_t k) {
    ScenarioConfig seed_config = config;
    seed_config.seed = options.base_seed + k;
    seed_config.audit = seed_config.audit || options.audit;
    traffic::Trace trace = traffic::generate_trace(
        workload, seed_config.horizon, seed_config.seed);
    if (options.faults.enabled) {
      validate::FaultSpec spec = options.faults;
      spec.seed += k;  // an independent fault schedule per seed
      trace = validate::apply_trace_faults(spec, trace);
    }
    per_seed[k].emplace(run_scenario(scheduler_name, seed_config, trace));
  });
  SweepResult aggregate;
  for (const auto& result : per_seed) {
    extract(*result, aggregate);
    if (options.audit)
      aggregate.add("audit_violations",
                    static_cast<double>(result->audit_violations));
  }
  return aggregate;
}

SweepResult sweep_scenario(std::string_view scheduler_name,
                           ScenarioConfig config,
                           const traffic::WorkloadSpec& workload,
                           std::uint64_t base_seed, std::size_t seeds,
                           const MetricExtractor& extract) {
  SweepOptions options;
  options.base_seed = base_seed;
  options.seeds = seeds;
  return sweep_scenario(scheduler_name, config, workload, options, extract);
}

}  // namespace wormsched::harness
