#include "harness/workload_parse.hpp"

#include <charconv>
#include <vector>

namespace wormsched::harness {

namespace {

struct Cursor {
  std::string_view text;
  std::string error;
  bool failed = false;

  [[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                    char sep) {
    std::vector<std::string_view> parts;
    while (true) {
      const auto pos = s.find(sep);
      parts.push_back(s.substr(0, pos));
      if (pos == std::string_view::npos) break;
      s = s.substr(pos + 1);
    }
    return parts;
  }

  void fail(const std::string& why) {
    if (!failed) error = why;
    failed = true;
  }
};

bool parse_double(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_flits(std::string_view s, Flits* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size() && *out > 0;
}

std::optional<traffic::LengthSpec> parse_length(std::string_view s,
                                                Cursor& cursor) {
  if (s.empty()) {
    cursor.fail("empty length spec");
    return std::nullopt;
  }
  const char kind = s.front();
  const std::string_view rest = s.substr(1);
  const auto parts = cursor.split(rest, '-');
  switch (kind) {
    case 'u': {
      Flits lo = 0;
      Flits hi = 0;
      if (parts.size() != 2 || !parse_flits(parts[0], &lo) ||
          !parse_flits(parts[1], &hi) || lo > hi) {
        cursor.fail("bad uniform length '" + std::string(s) +
                    "' (want u<lo>-<hi>)");
        return std::nullopt;
      }
      return traffic::LengthSpec::uniform(lo, hi);
    }
    case 'e': {
      double lambda = 0.0;
      Flits lo = 0;
      Flits hi = 0;
      if (parts.size() != 3 || !parse_double(parts[0], &lambda) ||
          !parse_flits(parts[1], &lo) || !parse_flits(parts[2], &hi) ||
          lambda <= 0.0 || lo > hi) {
        cursor.fail("bad exponential length '" + std::string(s) +
                    "' (want e<lambda>-<lo>-<hi>)");
        return std::nullopt;
      }
      return traffic::LengthSpec::truncated_exponential(lambda, lo, hi);
    }
    case 'c': {
      Flits len = 0;
      if (parts.size() != 1 || !parse_flits(parts[0], &len)) {
        cursor.fail("bad constant length '" + std::string(s) +
                    "' (want c<len>)");
        return std::nullopt;
      }
      return traffic::LengthSpec::constant(len);
    }
    case 'b': {
      Flits small = 0;
      Flits large = 0;
      double p = 0.0;
      if (parts.size() != 3 || !parse_flits(parts[0], &small) ||
          !parse_flits(parts[1], &large) || !parse_double(parts[2], &p) ||
          p < 0.0 || p > 1.0) {
        cursor.fail("bad bimodal length '" + std::string(s) +
                    "' (want b<small>-<large>-<p>)");
        return std::nullopt;
      }
      return traffic::LengthSpec::bimodal(small, large, p);
    }
    default:
      cursor.fail("unknown length kind '" + std::string(1, kind) + "'");
      return std::nullopt;
  }
}

std::optional<traffic::ArrivalSpec> parse_arrival(std::string_view name,
                                                  double rate,
                                                  Cursor& cursor) {
  if (name == "bern") return traffic::ArrivalSpec::bernoulli(rate);
  if (name == "poisson") return traffic::ArrivalSpec::poisson(rate);
  if (name == "periodic") return traffic::ArrivalSpec::periodic(rate);
  if (name.rfind("onoff-", 0) == 0) {
    const auto parts = cursor.split(name.substr(6), '-');
    double on = 0.0;
    double off = 0.0;
    if (parts.size() != 2 || !parse_double(parts[0], &on) ||
        !parse_double(parts[1], &off) || on <= 0.0 || off <= 0.0) {
      cursor.fail("bad on-off arrival '" + std::string(name) +
                  "' (want onoff-<mean_on>-<mean_off>)");
      return std::nullopt;
    }
    return traffic::ArrivalSpec::on_off(rate, on, off);
  }
  cursor.fail("unknown arrival process '" + std::string(name) + "'");
  return std::nullopt;
}

}  // namespace

std::optional<WorkloadParse> parse_workload(std::string_view text,
                                            std::string* error) {
  Cursor cursor{text, {}, false};
  WorkloadParse result;
  for (std::string_view flow_text : cursor.split(text, ';')) {
    if (flow_text.empty()) {
      cursor.fail("empty flow spec");
      break;
    }
    // Optional repetition suffix.
    std::size_t repeat = 1;
    if (const auto star = flow_text.rfind('*');
        star != std::string_view::npos) {
      const std::string_view count_text = flow_text.substr(star + 1);
      std::uint64_t count = 0;
      const auto [ptr, ec] = std::from_chars(
          count_text.data(), count_text.data() + count_text.size(), count);
      if (ec != std::errc{} || ptr != count_text.data() + count_text.size() ||
          count == 0) {
        cursor.fail("bad repetition '" + std::string(count_text) + "'");
        break;
      }
      repeat = count;
      flow_text = flow_text.substr(0, star);
    }
    const auto fields = cursor.split(flow_text, ':');
    if (fields.size() < 3 || fields.size() > 4) {
      cursor.fail("flow spec '" + std::string(flow_text) +
                  "' needs arrival:rate:length[:weight]");
      break;
    }
    double rate = 0.0;
    if (!parse_double(fields[1], &rate) || rate < 0.0) {
      cursor.fail("bad rate '" + std::string(fields[1]) + "'");
      break;
    }
    const auto arrival = parse_arrival(fields[0], rate, cursor);
    const auto length = parse_length(fields[2], cursor);
    double weight = 1.0;
    if (fields.size() == 4 &&
        (!parse_double(fields[3], &weight) || weight <= 0.0)) {
      cursor.fail("bad weight '" + std::string(fields[3]) + "'");
      break;
    }
    if (cursor.failed) break;
    for (std::size_t k = 0; k < repeat; ++k) {
      traffic::FlowSpec flow;
      flow.arrival = *arrival;
      flow.length = *length;
      flow.weight = weight;
      result.spec.flows.push_back(flow);
      result.weights.push_back(weight);
    }
  }
  if (!cursor.failed && result.spec.flows.empty())
    cursor.fail("no flows specified");
  if (cursor.failed) {
    if (error != nullptr) *error = cursor.error;
    return std::nullopt;
  }
  return result;
}

}  // namespace wormsched::harness
