#include "harness/network_sweep.hpp"

#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "harness/checkpoint.hpp"

namespace wormsched::harness {

NetworkScenarioResult run_network_scenario(const NetworkScenarioConfig& config,
                                           std::uint64_t seed) {
  // The single-segment special case of the resumable runner: straight
  // runs and checkpoint/restore chains execute the same code, so the
  // restore-equivalence differential holds by construction.
  NetworkRun run(config, seed);
  run.run_to_completion();
  return run.finish();
}

SweepResult sweep_network(const NetworkScenarioConfig& config,
                          const SweepOptions& options,
                          const NetworkMetricExtractor& extract) {
  WS_CHECK(options.seeds > 0);
  NetworkScenarioConfig effective = config;
  if (options.faults.enabled) effective.faults = options.faults;
  effective.audit = effective.audit || options.audit;
  std::vector<std::optional<NetworkScenarioResult>> per_seed(options.seeds);
  ThreadPool pool(options.jobs);
  pool.parallel_for(options.seeds, [&](std::size_t k) {
    NetworkScenarioConfig run_config = effective;
    if (run_config.trace.enabled() && options.seeds > 1) {
      // One private trace file set per seed: parallel workers must never
      // share an output path (or a sink).
      if (!run_config.trace.chrome_path.empty())
        run_config.trace.chrome_path =
            obs::with_seed_suffix(run_config.trace.chrome_path, k);
      if (!run_config.trace.timeline_csv.empty())
        run_config.trace.timeline_csv =
            obs::with_seed_suffix(run_config.trace.timeline_csv, k);
    }
    per_seed[k].emplace(
        run_network_scenario(run_config, options.base_seed + k));
  });
  SweepResult aggregate;
  for (const auto& result : per_seed) {
    extract(*result, aggregate);
    if (effective.audit)
      aggregate.add("audit_violations",
                    static_cast<double>(result->audit_violations));
  }
  return aggregate;
}

}  // namespace wormsched::harness
