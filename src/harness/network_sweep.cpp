#include "harness/network_sweep.hpp"

#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sim/engine.hpp"

namespace wormsched::harness {

NetworkScenarioResult run_network_scenario(const NetworkScenarioConfig& config,
                                           std::uint64_t seed) {
  WS_CHECK_MSG(config.traffic.inject_until < kCycleMax,
               "network sweep needs a finite injection window");
  wormhole::Network net(config.network);
  wormhole::NetworkTrafficSource::Config traffic = config.traffic;
  traffic.seed = seed;
  wormhole::NetworkTrafficSource source(net, traffic);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  const Cycle end =
      engine.run_until_idle(traffic.inject_until * config.drain_factor);

  NetworkScenarioResult result;
  result.end_cycle = end;
  result.generated_packets = source.generated();
  result.delivered_packets = net.delivered().size();
  result.delivered_flits = net.delivered_flits();
  QuantileEstimator q;
  for (const auto& p : net.delivered()) {
    const auto d = static_cast<double>(p.delivered - p.created);
    result.latency.add(d);
    q.add(d);
  }
  result.p99_latency = q.quantile(0.99);
  return result;
}

SweepResult sweep_network(const NetworkScenarioConfig& config,
                          const SweepOptions& options,
                          const NetworkMetricExtractor& extract) {
  WS_CHECK(options.seeds > 0);
  std::vector<std::optional<NetworkScenarioResult>> per_seed(options.seeds);
  ThreadPool pool(options.jobs);
  pool.parallel_for(options.seeds, [&](std::size_t k) {
    per_seed[k].emplace(
        run_network_scenario(config, options.base_seed + k));
  });
  SweepResult aggregate;
  for (const auto& result : per_seed) extract(*result, aggregate);
  return aggregate;
}

}  // namespace wormsched::harness
