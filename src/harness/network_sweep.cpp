#include "harness/network_sweep.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "core/err.hpp"
#include "sim/engine.hpp"
#include "validate/err_auditor.hpp"
#include "validate/network_auditor.hpp"
#include "wormhole/arbiter.hpp"

namespace wormsched::harness {

NetworkScenarioResult run_network_scenario(const NetworkScenarioConfig& config,
                                           std::uint64_t seed) {
  WS_CHECK_MSG(config.traffic.inject_until < kCycleMax,
               "network sweep needs a finite injection window");
  wormhole::NetworkConfig net_config = config.network;
  std::optional<validate::ScheduledFaults> faults;
  if (config.faults.enabled) {
    validate::FaultSpec spec = config.faults;
    spec.seed += seed;  // an independent fault schedule per run seed
    spec.num_nodes = net_config.topo.width * net_config.topo.height;
    faults.emplace(spec);
    net_config.faults = &*faults;
  }
  wormhole::Network net(net_config);
  if (config.perf_counters != nullptr)
    net.set_perf_counters(config.perf_counters);
  std::optional<obs::TraceSink> trace_sink;
  if (config.trace.enabled()) {
    obs::TraceSink::Options sink_options;
    sink_options.capacity = config.trace.capacity;
    sink_options.mask = config.trace.mask;
    trace_sink.emplace(sink_options);
    net.set_trace_sink(&*trace_sink);
  }
  obs::TraceSink* sink = trace_sink ? &*trace_sink : nullptr;
  wormhole::NetworkTrafficSource::Config traffic = config.traffic;
  traffic.seed = seed;
  traffic.faults = net_config.faults;
  wormhole::NetworkTrafficSource source(net, traffic);

  // Auditors live on this frame: the fabric auditor sees every cycle,
  // and each ERR output arbiter streams its opportunities into its own
  // paper-bounds auditor; all of them share one violation log.  Tracing
  // subscribes to the same single-slot opportunity stream, so when both
  // are on one combined listener per arbiter feeds auditor then sink.
  validate::AuditLog private_log;
  validate::AuditLog& audit_log =
      config.audit_log != nullptr ? *config.audit_log : private_log;
  std::optional<validate::NetworkAuditor> net_auditor;
  std::vector<std::unique_ptr<validate::ErrAuditor>> err_auditors;
  const bool trace_opportunities =
      sink != nullptr && sink->wants(obs::EventKind::kOpportunity);
  if (config.audit || trace_opportunities) {
    if (config.audit) {
      net_auditor.emplace(config.audit_config, audit_log);
      net.attach_observer(&*net_auditor);
    }
    const std::uint32_t nodes = net.topology().num_nodes();
    const std::uint32_t vcs = net_config.router.num_vcs;
    const std::size_t requesters =
        static_cast<std::size_t>(wormhole::kNumDirections) * vcs;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (std::uint32_t d = 0; d < wormhole::kNumDirections; ++d) {
        for (std::uint32_t cls = 0; cls < vcs; ++cls) {
          auto* err = dynamic_cast<wormhole::ErrArbiter*>(
              &net.router(NodeId(n)).arbiter(
                  static_cast<wormhole::Direction>(d), cls));
          if (err == nullptr) continue;
          validate::ErrAuditor* audit_ptr = nullptr;
          if (config.audit && config.audit_err) {
            auto auditor = std::make_unique<validate::ErrAuditor>(
                requesters, validate::ErrAuditorConfig{}, audit_log);
            audit_ptr = auditor.get();
            err_auditors.push_back(std::move(auditor));
          }
          if (trace_opportunities) {
            const std::uint32_t unit = d * vcs + cls;
            err->policy().set_opportunity_listener(
                [sink, audit_ptr, n, unit](const core::ErrOpportunity& op) {
                  if (audit_ptr != nullptr) audit_ptr->on_opportunity(op);
                  sink->record(obs::TraceEvent::opportunity(
                      sink->now(), op.flow.value(), op.round, op.allowance,
                      op.surplus_count, n, unit));
                });
          } else if (audit_ptr != nullptr) {
            audit_ptr->attach(err->policy());
          }
        }
      }
    }
  }

  // A violation enters the trace ring and — once per run — dumps the
  // event window around it while the evidence is still in the ring.
  bool violation_window_dumped = false;
  if (sink != nullptr) {
    audit_log.set_on_report([&](const validate::Violation& v) {
      sink->record(obs::TraceEvent::violation(
          sink->now(), sink->note(v.check + ": " + v.detail)));
      if (!violation_window_dumped && !config.trace.chrome_path.empty()) {
        violation_window_dumped = true;
        obs::write_chrome_trace_file(config.trace.chrome_path +
                                         ".violation.json",
                                     *sink);
      }
    });
  }

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  const Cycle end =
      engine.run_until_idle(traffic.inject_until * config.drain_factor);

  NetworkScenarioResult result;
  result.end_cycle = end;
  result.generated_packets = source.generated();
  result.delivered_packets = net.delivered().size();
  result.delivered_flits = net.delivered_flits();
  QuantileEstimator q;
  for (const auto& p : net.delivered()) {
    const auto d = static_cast<double>(p.delivered - p.created);
    result.latency.add(d);
    q.add(d);
  }
  result.p99_latency = q.quantile(0.99);
  if (config.audit) {
    // Simulation-end flush: audits the tail window a sampled cadence
    // never reaches, and cross-checks the incremental ledgers one last
    // time against the full-scan oracle.
    net_auditor->finish(end, net);
    result.audit_checks = net_auditor->checks_run();
    result.audit_full_rescans = net_auditor->full_rescans();
    result.audit_violations = audit_log.count();
    for (const auto& auditor : err_auditors)
      result.audit_opportunities += auditor->opportunities();
    net.detach_observer(&*net_auditor);
  }
  if (sink != nullptr) {
    result.trace_recorded = sink->recorded();
    result.trace_dropped = sink->dropped();
    obs::export_trace(config.trace, *sink);
  }
  return result;
}

SweepResult sweep_network(const NetworkScenarioConfig& config,
                          const SweepOptions& options,
                          const NetworkMetricExtractor& extract) {
  WS_CHECK(options.seeds > 0);
  NetworkScenarioConfig effective = config;
  if (options.faults.enabled) effective.faults = options.faults;
  effective.audit = effective.audit || options.audit;
  std::vector<std::optional<NetworkScenarioResult>> per_seed(options.seeds);
  ThreadPool pool(options.jobs);
  pool.parallel_for(options.seeds, [&](std::size_t k) {
    NetworkScenarioConfig run_config = effective;
    if (run_config.trace.enabled() && options.seeds > 1) {
      // One private trace file set per seed: parallel workers must never
      // share an output path (or a sink).
      if (!run_config.trace.chrome_path.empty())
        run_config.trace.chrome_path =
            obs::with_seed_suffix(run_config.trace.chrome_path, k);
      if (!run_config.trace.timeline_csv.empty())
        run_config.trace.timeline_csv =
            obs::with_seed_suffix(run_config.trace.timeline_csv, k);
    }
    per_seed[k].emplace(
        run_network_scenario(run_config, options.base_seed + k));
  });
  SweepResult aggregate;
  for (const auto& result : per_seed) {
    extract(*result, aggregate);
    if (effective.audit)
      aggregate.add("audit_violations",
                    static_cast<double>(result->audit_violations));
  }
  return aggregate;
}

}  // namespace wormsched::harness
