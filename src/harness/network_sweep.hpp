// Multi-seed sweeps over the wormhole network substrate.
//
// The standalone sweep (sweep.hpp) replays traces through one scheduler;
// this is its analogue for whole-fabric runs: one NetworkScenarioConfig
// describes a (topology, router, traffic) point, run_network_scenario
// executes it for one seed, and sweep_network fans seeds across workers
// with the same index-ordered fold — and therefore the same determinism
// contract — as sweep_scenario.
#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "harness/sweep.hpp"
#include "metrics/perf_counters.hpp"
#include "obs/trace_export.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::harness {

struct NetworkScenarioConfig {
  wormhole::NetworkConfig network;
  /// Traffic for the run; `traffic.seed` is overridden per seed and
  /// `traffic.inject_until` must be finite (it bounds the run).
  wormhole::NetworkTrafficSource::Config traffic;
  /// Drain cap: after injection the run continues until the fabric is
  /// idle or `inject_until * drain_factor` cycles have elapsed.
  Cycle drain_factor = 50;
  /// Fault injection: a ScheduledFaults model (seeded with faults.seed +
  /// run seed, sized to the topology) is plugged into the network and the
  /// traffic source for the run's duration.
  validate::FaultSpec faults;
  /// Attach the runtime auditors: the NetworkAuditor observes every
  /// cycle (conservation + active-set), and an ErrAuditor subscribes to
  /// every ERR output arbiter in the fabric (paper bounds per port).
  bool audit = false;
  /// NetworkAuditor tuning when `audit` is set: mode (incremental ledger
  /// updates vs full rescans), check cadence, and the incremental mode's
  /// periodic full-rescan cross-check.
  validate::NetworkAuditorConfig audit_config;
  /// When auditing, also subscribe an ErrAuditor to every ERR output
  /// arbiter (paper bounds per port).  Off isolates the fabric
  /// conservation auditor — the bench times it that way to attribute
  /// audit cost to the network observer alone.
  bool audit_err = true;
  /// Optional external violation sink.  When null and audit is set, the
  /// runner uses a private log and only the counts survive in the result
  /// (Debug builds abort on the first violation either way).  Only
  /// meaningful for single-seed runs — sweep workers would share it
  /// unsynchronised.
  validate::AuditLog* audit_log = nullptr;
  /// Per-stage perf-counter sink attached to the network for the run's
  /// duration (not owned; nullptr = uninstrumented).  Only meaningful for
  /// single-seed runs — sweeps share the sink across workers unsynchronised.
  metrics::PerfCounters* perf_counters = nullptr;
  /// Structured event tracing for the run (docs/OBSERVABILITY.md).  Each
  /// run owns a private TraceSink (sweep workers never share one) and
  /// exports it when the run ends; sweeps rewrite the output paths per
  /// seed (trace.json -> trace.seedK.json).  When the auditor reports a
  /// violation the window around it is additionally dumped to
  /// <chrome_path>.violation.json.  Disabled (the default) the fabric
  /// hot path pays one null-pointer test per site.
  obs::TraceRequest trace;
};

/// Everything the network benches read out of one finished run.
struct NetworkScenarioResult {
  Cycle end_cycle = 0;
  std::uint64_t generated_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_flits = 0;
  RunningStat latency;        // per delivered packet, inject-to-tail
  double p99_latency = 0.0;
  /// Filled when NetworkScenarioConfig::audit ran.
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_full_rescans = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t audit_opportunities = 0;
  /// Filled when NetworkScenarioConfig::trace was enabled.
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
};

/// Runs one network scenario with `seed` driving the traffic source.
[[nodiscard]] NetworkScenarioResult run_network_scenario(
    const NetworkScenarioConfig& config, std::uint64_t seed);

using NetworkMetricExtractor =
    std::function<void(const NetworkScenarioResult&, SweepResult&)>;

/// Runs `options.seeds` independent instances of `config` (seed k drives
/// the traffic with base_seed + k) across `options.jobs` workers and
/// folds the extracted metrics in seed order — byte-identical for every
/// jobs value.
[[nodiscard]] SweepResult sweep_network(const NetworkScenarioConfig& config,
                                        const SweepOptions& options,
                                        const NetworkMetricExtractor& extract);

}  // namespace wormsched::harness
