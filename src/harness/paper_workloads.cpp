#include "harness/paper_workloads.hpp"

#include "common/assert.hpp"

namespace wormsched::harness {

namespace {

/// Aggregate mean flit rate of `spec` per unit base packet rate, i.e. the
/// sum over flows of (rate multiplier x mean length).
double flits_per_unit_rate(const traffic::WorkloadSpec& spec) {
  double total = 0.0;
  for (const auto& f : spec.flows)
    total += f.arrival.rate * f.length.mean_length();
  return total;
}

/// Builds the asymmetric flow set of Figs. 4 and 5 with a placeholder
/// base rate of 1, then rescales so aggregate offered load == overload.
traffic::WorkloadSpec asymmetric_workload(std::size_t num_flows,
                                          double overload) {
  WS_CHECK(num_flows >= 1);
  traffic::WorkloadSpec spec;
  spec.flows.reserve(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    traffic::FlowSpec flow;
    // "The packet lengths are uniformly distributed between 1 and 64 flits
    //  for all the flows except flow 2.  Packets arriving in queue 2 have
    //  lengths uniformly distributed between 1 and 128 flits."
    flow.length = (i == 2) ? traffic::LengthSpec::uniform(1, 128)
                           : traffic::LengthSpec::uniform(1, 64);
    // "The arrival rate in terms of packets per second into the queue
    //  corresponding to flow 3 is twice the rate of other flows."
    flow.arrival = traffic::ArrivalSpec::bernoulli(i == 3 ? 2.0 : 1.0);
    spec.flows.push_back(flow);
  }
  const double scale = overload / flits_per_unit_rate(spec);
  for (auto& f : spec.flows) f.arrival.rate *= scale;
  return spec;
}

}  // namespace

traffic::WorkloadSpec fig4_workload(std::size_t num_flows, double overload) {
  return asymmetric_workload(num_flows, overload);
}

traffic::WorkloadSpec fig5_workload(double congestion_ratio,
                                    Cycle congestion_cycles) {
  traffic::WorkloadSpec spec = asymmetric_workload(4, congestion_ratio);
  spec.inject_until = congestion_cycles;
  return spec;
}

traffic::WorkloadSpec fig6_workload(std::size_t num_flows, double overload) {
  WS_CHECK(num_flows >= 2);
  traffic::WorkloadSpec spec;
  spec.flows.reserve(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    traffic::FlowSpec flow;
    // "packet lengths in all the flows are exponentially distributed with
    //  lambda = 0.2, in the range between 1 to 64"
    flow.length = traffic::LengthSpec::truncated_exponential(0.2, 1, 64);
    flow.arrival = traffic::ArrivalSpec::bernoulli(1.0);
    spec.flows.push_back(flow);
  }
  const double scale = overload / flits_per_unit_rate(spec);
  for (auto& f : spec.flows) f.arrival.rate *= scale;
  return spec;
}

}  // namespace wormsched::harness
