#include "common/snapshot.hpp"

#include <cstdio>
#include <cstring>

namespace wormsched {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'N', 'P', 'S', 'H', 'O', 'T'};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[n] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void SnapshotWriter::begin_section(std::uint32_t tag) {
  WS_CHECK_MSG(tag != 0, "section tag 0 is reserved");
  u32(tag);
  open_sections_.push_back(buf_.size());
  u64(0);  // placeholder, patched by end_section
}

void SnapshotWriter::end_section() {
  WS_CHECK_MSG(!open_sections_.empty(), "end_section without begin_section");
  const std::size_t length_at = open_sections_.back();
  open_sections_.pop_back();
  const std::uint64_t body = buf_.size() - (length_at + 8);
  for (int i = 0; i < 8; ++i)
    buf_[length_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
}

std::uint32_t SnapshotReader::peek_section() const {
  if (limit() - pos_ < 4) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

void SnapshotReader::enter_section(std::uint32_t tag) {
  const std::uint32_t found = u32();
  if (found != tag)
    throw SnapshotError("snapshot section mismatch (expected tag " +
                        std::to_string(tag) + ", found " +
                        std::to_string(found) + ")");
  const std::uint64_t length = u64();
  need(length);
  section_ends_.push_back(pos_ + static_cast<std::size_t>(length));
}

void SnapshotReader::leave_section() {
  WS_CHECK_MSG(!section_ends_.empty(), "leave_section outside a section");
  pos_ = section_ends_.back();
  section_ends_.pop_back();
}

void SnapshotReader::skip_section() {
  (void)u32();
  const std::uint64_t length = u64();
  need(length);
  pos_ += static_cast<std::size_t>(length);
}

void write_snapshot_file(const std::string& path,
                         const std::string& manifest_json,
                         const std::vector<std::uint8_t>& payload) {
  SnapshotWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kSnapshotFormatVersion);
  header.u32(0);  // flags, reserved
  header.str(manifest_json);
  header.u64(payload.size());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("cannot open snapshot file for writing: " + path);
  bool ok =
      std::fwrite(header.bytes().data(), 1, header.bytes().size(), f) ==
      header.bytes().size();
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size());
  const std::uint32_t crc = snapshot_crc32(payload.data(), payload.size());
  std::uint8_t crc_bytes[4];
  for (int i = 0; i < 4; ++i)
    crc_bytes[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  ok = ok && std::fwrite(crc_bytes, 1, 4, f) == 4;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) throw std::runtime_error("short write to snapshot file: " + path);
}

SnapshotFile parse_snapshot_bytes(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("not a wormsched snapshot (bad magic)");
  SnapshotReader r(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.u8();
  SnapshotFile file;
  file.version = r.u32();
  if (file.version != kSnapshotFormatVersion)
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(file.version) +
                        " (this build reads version " +
                        std::to_string(kSnapshotFormatVersion) + ")");
  (void)r.u32();  // flags
  file.manifest_json = r.str();
  const std::uint64_t payload_len = r.u64();
  file.payload.resize(static_cast<std::size_t>(payload_len));
  for (auto& byte : file.payload) byte = r.u8();
  const std::uint32_t declared_crc = r.u32();
  const std::uint32_t actual_crc =
      snapshot_crc32(file.payload.data(), file.payload.size());
  if (declared_crc != actual_crc)
    throw SnapshotError("snapshot payload corrupted (CRC mismatch)");
  return file;
}

SnapshotFile read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw SnapshotError("cannot open snapshot file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw SnapshotError("I/O error reading snapshot: " + path);
  return parse_snapshot_bytes(bytes);
}

}  // namespace wormsched
