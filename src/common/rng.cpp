#include "common/rng.hpp"

#include <cmath>

namespace wormsched {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  WS_CHECK(bound != 0);
  // Lemire's multiply-shift with rejection of the biased low region.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WS_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range (hi - lo overflowed); avoid the
  // bounded path in that degenerate case.
  const std::uint64_t draw = span == 0 ? next_u64() : uniform_u64(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform_real();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::exponential(double lambda) {
  WS_CHECK(lambda > 0.0);
  // -log(1 - U) with U in [0,1): argument stays in (0,1], no log(0).
  return -std::log(1.0 - uniform_real()) / lambda;
}

std::int64_t Rng::truncated_exponential_int(double lambda, std::int64_t lo,
                                            std::int64_t hi) {
  WS_CHECK(lo <= hi);
  for (;;) {
    const auto k =
        lo + static_cast<std::int64_t>(std::floor(exponential(lambda)));
    if (k <= hi) return k;
  }
}

std::uint64_t Rng::poisson(double mean) {
  WS_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform_real();
    while (product > limit) {
      ++count;
      product *= uniform_real();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-mean batch-arrival use in workload generators.
  const double u1 = uniform_real();
  const double u2 = uniform_real();
  const double gauss =
      std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace wormsched
