// Small command-line option parser for the examples and figure benches.
//
// Supports `--name value`, `--name=value` and boolean `--name`.  Unknown
// options are an error (catches typos in sweep scripts); positional
// arguments are collected in order.  Flag options validate any inline
// value at parse time (`--audit=yes` works, `--audit=on` is rejected),
// and the numeric getters validate the full string with std::from_chars —
// junk (`--cycles=10x`), overflow, and a negative value handed to an
// unsigned option all fail with a per-option message and exit code 2
// instead of throwing or silently wrapping.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wormsched {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Declares an option.  `help` appears in usage(); `default_value` is
  /// returned when the option is absent.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);
  void add_flag(const std::string& name, const std::string& help);
  /// Declares an enumerated option that behaves like a flag on the
  /// command line: it never consumes the next token, so `--audit run.json`
  /// keeps `run.json` positional.  Bare `--name` reads back as
  /// `bare_value`; `--name=choice` is validated against `choices` at
  /// parse time; an absent option reads back as `default_value`.  Both
  /// `bare_value` and `default_value` must themselves be in `choices`.
  void add_choice_flag(const std::string& name, const std::string& help,
                       std::vector<std::string> choices,
                       const std::string& bare_value,
                       const std::string& default_value);

  /// Parses argv.  Returns false (after printing usage) on error or when
  /// `--help` is requested.  Flag options accept inline values from
  /// {true,false,1,0,yes,no} only; anything else is a parse error.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  /// Numeric getters: the whole value must parse (std::from_chars) and
  /// fit the type; otherwise they print "option --<name>: ..." to stderr
  /// and exit(2).  In particular a negative value can never reach an
  /// unsigned option by wrapping.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Every declared option with its effective (parsed-or-default) value,
  /// in declaration-name order.  Run manifests record this as the
  /// invocation's full configuration.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items()
      const;

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
    std::optional<std::string> value;
    // Choice flags: non-empty `choices` marks the option; `bare_value` is
    // what a value-less `--name` means.
    std::vector<std::string> choices;
    std::string bare_value;
  };

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

/// Declares the shared `--jobs` option (worker threads for sweeps;
/// 0 = one per hardware thread).  Every sweep-capable bench and the CLI
/// declare it through this helper so the flag reads identically everywhere.
void add_jobs_option(CliParser& cli, const std::string& default_value = "1");

/// Resolves `--jobs` to an effective worker count: 0 expands to the
/// hardware thread count, anything else is used as given (minimum 1).
[[nodiscard]] std::size_t resolve_jobs(const CliParser& cli);

/// Declares the shared `--threads` / `--shards` options for the sharded
/// network tick.  Unlike `--jobs`, 0 is NOT a wildcard here: a network
/// always has at least one tick thread and one shard domain, so both
/// options reject 0 (and non-numeric values) at resolve time with exit
/// code 2.  `--shards` left unset follows `--threads` (one domain per
/// thread, the balanced default).
void add_network_parallel_options(CliParser& cli);

struct NetworkParallelism {
  std::uint32_t threads = 1;
  std::uint32_t shards = 1;
};

/// Resolves `--threads` / `--shards` with strict validation: both must be
/// numeric and >= 1 (prints "option --<name>: ..." and exits 2 otherwise,
/// matching the numeric getters).  An unset `--shards` resolves to the
/// thread count.
[[nodiscard]] NetworkParallelism resolve_network_parallelism(
    const CliParser& cli);

}  // namespace wormsched
