// Fundamental units and strongly-typed identifiers used across the library.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace wormsched {

/// Simulation time, measured in flit cycles.  One cycle is the time the
/// output resource needs to transfer one flit (the paper's service model:
/// "the scheduler dequeues one flit from one of the queues in each cycle").
using Cycle = std::uint64_t;

/// Packet / allowance sizes measured in flits.  Surplus-count arithmetic
/// (Sent - Allowance) can transiently go negative, so the signed width is
/// deliberate.
using Flits = std::int64_t;

/// Payload sizes in bytes (a flit carries a fixed number of bytes).
using Bytes = std::uint64_t;

inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/// A strongly-typed integral identifier.  Prevents accidentally passing a
/// flow id where a port id is expected; compiles to a bare integer.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  /// Identifier usable as a dense array index.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<Rep>::max());
  }
  [[nodiscard]] constexpr bool is_valid() const {
    return value_ != std::numeric_limits<Rep>::max();
  }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  Rep value_ = std::numeric_limits<Rep>::max();
};

struct FlowIdTag {};
struct PacketIdTag {};
struct NodeIdTag {};
struct PortIdTag {};
struct VcIdTag {};

/// Identifies one traffic flow (paper Sec. 1: e.g. an input queue of a
/// wormhole switch, a virtual channel, or an Internet source-destination
/// pair).
using FlowId = StrongId<FlowIdTag>;
/// Identifies one packet, unique within a simulation run.
using PacketId = StrongId<PacketIdTag, std::uint64_t>;
/// Identifies one switch/end-node in a network topology.
using NodeId = StrongId<NodeIdTag>;
/// Identifies one port of a router.
using PortId = StrongId<PortIdTag>;
/// Identifies one virtual channel on a link/port.
using VcId = StrongId<VcIdTag>;

}  // namespace wormsched

template <typename Tag, typename Rep>
struct std::hash<wormsched::StrongId<Tag, Rep>> {
  std::size_t operator()(const wormsched::StrongId<Tag, Rep>& id) const {
    return std::hash<Rep>{}(id.value());
  }
};
