#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::save(SnapshotWriter& w) const {
  w.u64(count_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(sum_);
  w.f64(min_);
  w.f64(max_);
}

void RunningStat::restore(SnapshotReader& r) {
  count_ = static_cast<std::size_t>(r.u64());
  mean_ = r.f64();
  m2_ = r.f64();
  sum_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  WS_CHECK(hi > lo);
  WS_CHECK(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + static_cast<double>(i + 1) * bin_width_;
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        (static_cast<double>(counts_[i]) / static_cast<double>(peak)) *
        static_cast<double>(bar_width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << counts_[i] << " "
        << std::string(bar, '#') << "\n";
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

QuantileEstimator::QuantileEstimator(std::size_t reservoir_capacity,
                                     std::uint64_t seed)
    : capacity_(reservoir_capacity), rng_state_(seed | 1) {
  WS_CHECK(capacity_ > 0);
  samples_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void QuantileEstimator::add(double x) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: replace a uniformly random retained sample with
  // probability capacity/seen.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const std::uint64_t slot = rng_state_ % seen_;
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = x;
    sorted_ = false;
  }
}

void QuantileEstimator::save(SnapshotWriter& w) const {
  w.u64(capacity_);
  w.u64(seen_);
  w.u64(rng_state_);
  // The reservoir is saved in its current array order (with the lazy-sort
  // flag): future Algorithm R replacements address samples by slot, so
  // the order itself is state.
  w.b(sorted_);
  save_doubles(w, samples_);
}

void QuantileEstimator::restore(SnapshotReader& r) {
  capacity_ = static_cast<std::size_t>(r.u64());
  WS_CHECK(capacity_ > 0);
  seen_ = r.u64();
  rng_state_ = r.u64();
  sorted_ = r.b();
  restore_doubles(r, samples_);
}

double QuantileEstimator::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

}  // namespace wormsched
