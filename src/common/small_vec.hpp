// Fixed-capacity inline vector for allocation-free hot paths.
//
// The wormhole router's route-computation stage runs once per head flit
// per hop; returning candidates in a std::vector put a heap allocation on
// that path.  SmallVec keeps up to N elements in-place — overflow is a
// checked invariant, not a reallocation — so filling one is pure stack
// traffic.  Trivially-copyable element types (RouteDecision and friends)
// take a memcpy fast path on copy/move and skip the destructor sweep.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace wormsched {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N >= 1, "SmallVec needs a nonzero capacity");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { append_from(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    append_from(other);
    return *this;
  }
  SmallVec(SmallVec&& other) noexcept { move_from(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    clear();
    move_from(other);
    return *this;
  }
  ~SmallVec() { clear(); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    WS_CHECK_MSG(size_ < N, "SmallVec capacity overflow");
    T* p = ::new (data() + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    WS_CHECK(size_ > 0);
    --size_;
    if constexpr (!std::is_trivially_destructible_v<T>) {
      (data() + size_)->~T();
    }
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    WS_CHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    WS_CHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  void clear() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = 0; i < size_; ++i) (data() + i)->~T();
    }
    size_ = 0;
  }

 private:
  [[nodiscard]] T* data() {
    return std::launder(reinterpret_cast<T*>(storage_));
  }
  [[nodiscard]] const T* data() const {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  void append_from(const SmallVec& other) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(storage_, other.storage_, other.size_ * sizeof(T));
      size_ = other.size_;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i)
        emplace_back(other.data()[i]);
    }
  }

  void move_from(SmallVec& other) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(storage_, other.storage_, other.size_ * sizeof(T));
      size_ = other.size_;
      other.size_ = 0;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i)
        emplace_back(std::move(other.data()[i]));
      other.clear();
    }
  }

  alignas(T) std::byte storage_[N * sizeof(T)];
  std::size_t size_ = 0;
};

}  // namespace wormsched
