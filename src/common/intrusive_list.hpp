// Intrusive doubly-linked list.
//
// The ERR/DRR ActiveList must support O(1) push-to-tail, pop-from-head and
// membership test with zero allocation per operation (Theorem 1 of the
// paper rests on these costs).  An intrusive list over per-flow state
// objects — which live in a flat array owned by the scheduler — gives all
// three with no heap traffic after initialization.
#pragma once

#include <cstddef>
#include <iterator>

#include "common/assert.hpp"

namespace wormsched {

/// Embed one of these (per list) in any object that participates in an
/// IntrusiveList.  A default-constructed hook is "unlinked".
class IntrusiveListHook {
 public:
  IntrusiveListHook() = default;
  // Hooks are identity objects: copying a linked hook would corrupt the
  // list, so copies are forbidden outright.
  IntrusiveListHook(const IntrusiveListHook&) = delete;
  IntrusiveListHook& operator=(const IntrusiveListHook&) = delete;
  ~IntrusiveListHook() { WS_CHECK_MSG(!is_linked(), "destroying linked hook"); }

  [[nodiscard]] bool is_linked() const { return next_ != nullptr; }

 private:
  template <typename T, IntrusiveListHook T::*>
  friend class IntrusiveList;

  IntrusiveListHook* prev_ = nullptr;
  IntrusiveListHook* next_ = nullptr;
};

/// Intrusive doubly-linked list of `T` through member hook `Hook`.
/// The list does not own its elements; elements must outlive the list or
/// be unlinked first.
template <typename T, IntrusiveListHook T::*Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev_ = &sentinel_;
    sentinel_.next_ = &sentinel_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;
  ~IntrusiveList() {
    clear();
    // The sentinel is self-linked by design; detach it so its own hook
    // destructor does not trip the linked-hook check.
    sentinel_.prev_ = nullptr;
    sentinel_.next_ = nullptr;
  }

  [[nodiscard]] bool empty() const { return sentinel_.next_ == &sentinel_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push_back(T& item) {
    IntrusiveListHook& h = item.*Hook;
    WS_CHECK_MSG(!h.is_linked(), "push_back of already-linked element");
    h.prev_ = sentinel_.prev_;
    h.next_ = &sentinel_;
    sentinel_.prev_->next_ = &h;
    sentinel_.prev_ = &h;
    ++size_;
  }

  void push_front(T& item) {
    IntrusiveListHook& h = item.*Hook;
    WS_CHECK_MSG(!h.is_linked(), "push_front of already-linked element");
    h.next_ = sentinel_.next_;
    h.prev_ = &sentinel_;
    sentinel_.next_->prev_ = &h;
    sentinel_.next_ = &h;
    ++size_;
  }

  [[nodiscard]] T& front() {
    WS_CHECK(!empty());
    return *owner(sentinel_.next_);
  }
  [[nodiscard]] const T& front() const {
    WS_CHECK(!empty());
    return *owner(sentinel_.next_);
  }
  [[nodiscard]] T& back() {
    WS_CHECK(!empty());
    return *owner(sentinel_.prev_);
  }

  /// Unlinks and returns the head element.
  T& pop_front() {
    T& item = front();
    erase(item);
    return item;
  }

  /// Unlinks `item` from this list.  O(1).
  void erase(T& item) {
    IntrusiveListHook& h = item.*Hook;
    WS_CHECK_MSG(h.is_linked(), "erase of unlinked element");
    h.prev_->next_ = h.next_;
    h.next_->prev_ = h.prev_;
    h.prev_ = nullptr;
    h.next_ = nullptr;
    WS_CHECK(size_ > 0);
    --size_;
  }

  /// Unlinks every element (elements themselves are untouched).
  void clear() {
    while (!empty()) pop_front();
  }

  [[nodiscard]] static bool is_linked(const T& item) {
    return (item.*Hook).is_linked();
  }

  /// Forward iteration (const and non-const).  The iterator tolerates
  /// erasure of elements other than the current one.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    explicit iterator(IntrusiveListHook* pos) : pos_(pos) {}
    reference operator*() const { return *owner(pos_); }
    pointer operator->() const { return owner(pos_); }
    iterator& operator++() {
      pos_ = pos_->next_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const iterator&) const = default;

   private:
    IntrusiveListHook* pos_ = nullptr;
  };

  [[nodiscard]] iterator begin() { return iterator(sentinel_.next_); }
  [[nodiscard]] iterator end() { return iterator(&sentinel_); }

  /// Const iteration (checkpointing walks the list read-only).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = const T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    explicit const_iterator(const IntrusiveListHook* pos) : pos_(pos) {}
    reference operator*() const { return *owner(pos_); }
    pointer operator->() const { return owner(pos_); }
    const_iterator& operator++() {
      pos_ = pos_->next_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const const_iterator&) const = default;

   private:
    const IntrusiveListHook* pos_ = nullptr;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(sentinel_.next_);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(&sentinel_);
  }

 private:
  static T* owner(IntrusiveListHook* hook) {
    // Recover the owning object from the embedded hook address.
    const auto hook_offset = reinterpret_cast<std::ptrdiff_t>(
        &(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(hook) - hook_offset);
  }
  static const T* owner(const IntrusiveListHook* hook) {
    return owner(const_cast<IntrusiveListHook*>(hook));
  }

  // Circular list through a sentinel: no null checks on the hot path.
  // The sentinel's hooks are never "unlinked", which is fine because the
  // sentinel is not an element.
  mutable IntrusiveListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace wormsched
