#include "common/thread_pool.hpp"

#include <utility>

#include "common/assert.hpp"

namespace wormsched {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = hardware_workers();
  if (workers <= 1) return;  // inline pool
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::record_exception(std::exception_ptr error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

void ThreadPool::submit(std::function<void()> task) {
  WS_CHECK(task != nullptr);
  if (threads_.empty()) {
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_[queue_head_++]);
      ++in_flight_;
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] {
      return queue_head_ >= queue_.size() && in_flight_ == 0;
    });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (threads_.empty()) {
    // Same exception contract as the pooled path: every index runs, the
    // first exception is recorded and rethrown once the loop finishes —
    // a throwing iteration must not silently skip the remaining work on
    // an inline pool when it would not have on a threaded one.
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        record_exception(std::current_exception());
      }
    }
    wait_idle();
    return;
  }
  // One task per index: seeds are coarse enough that per-task queue cost
  // is noise, and dynamic hand-out balances uneven drain times.
  for (std::size_t i = 0; i < n; ++i) {
    submit([&body, i] { body(i); });
  }
  wait_idle();
}

}  // namespace wormsched
