#include "common/tick_team.hpp"

#include <utility>

#include "common/assert.hpp"

namespace wormsched {

TickTeam::TickTeam(std::uint32_t lanes)
    : lanes_(lanes == 0 ? 1 : lanes), start_(lanes_), done_(lanes_) {
  if (lanes_ <= 1) return;
  workers_.reserve(lanes_ - 1);
  for (std::uint32_t lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

TickTeam::~TickTeam() {
  if (workers_.empty()) return;
  stopping_ = true;
  start_.arrive_and_wait();  // releases every parked worker into exit
  for (std::thread& t : workers_) t.join();
}

void TickTeam::record_exception() {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void TickTeam::worker_loop(std::uint32_t lane) {
  for (;;) {
    start_.arrive_and_wait();
    if (stopping_) return;
    try {
      job_(ctx_, lane);
    } catch (...) {
      record_exception();
    }
    done_.arrive_and_wait();
  }
}

void TickTeam::run_impl(Trampoline job, void* ctx) {
  WS_CHECK(job != nullptr);
  job_ = job;
  ctx_ = ctx;
  start_.arrive_and_wait();
  try {
    job(ctx, 0);
  } catch (...) {
    record_exception();
  }
  done_.arrive_and_wait();
  // All lanes are quiesced past the done barrier; reading the slot needs
  // no lock for correctness but takes it to keep the invariant simple.
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace wormsched
