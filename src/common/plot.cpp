#include "common/plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace wormsched {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@'};
}

AsciiChart::AsciiChart(std::string title, std::size_t width,
                       std::size_t height)
    : title_(std::move(title)), width_(width), height_(height) {
  WS_CHECK(width >= 8 && height >= 4);
}

void AsciiChart::add_series(const std::string& name,
                            const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  WS_CHECK_MSG(xs.size() == ys.size(), "series x/y size mismatch");
  Series s;
  s.name = name;
  s.marker = kMarkers[series_.size() % std::size(kMarkers)];
  s.xs = xs;
  s.ys = ys;
  series_.push_back(std::move(s));
}

void AsciiChart::print(std::ostream& os) const {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  bool any = false;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      any = true;
      x_min = std::min(x_min, s.xs[i]);
      x_max = std::max(x_max, s.xs[i]);
      y_min = std::min(y_min, s.ys[i]);
      y_max = std::max(y_max, s.ys[i]);
    }
  }
  if (!any) {
    os << title_ << " (no data)\n";
    return;
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  // A little headroom so extreme points don't sit on the frame.
  const double y_pad = (y_max - y_min) * 0.05;
  y_max += y_pad;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto col = [&](double x) {
    const double t = (x - x_min) / (x_max - x_min);
    return std::min(width_ - 1,
                    static_cast<std::size_t>(t * static_cast<double>(width_ - 1) + 0.5));
  };
  const auto row = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    const auto from_bottom = static_cast<std::size_t>(
        t * static_cast<double>(height_ - 1) + 0.5);
    return height_ - 1 - std::min(height_ - 1, from_bottom);
  };

  for (const Series& s : series_) {
    // Sort points by x so line interpolation is well defined.
    std::vector<std::size_t> order(s.xs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return s.xs[a] < s.xs[b];
    });
    // Linear interpolation between consecutive points, then the marker on
    // each actual data point.
    for (std::size_t k = 1; k < order.size(); ++k) {
      const double x0 = s.xs[order[k - 1]];
      const double y0 = s.ys[order[k - 1]];
      const double x1 = s.xs[order[k]];
      const double y1 = s.ys[order[k]];
      const std::size_t c0 = col(x0);
      const std::size_t c1 = col(x1);
      for (std::size_t c = c0; c <= c1; ++c) {
        const double alpha =
            c1 == c0 ? 0.0
                     : static_cast<double>(c - c0) / static_cast<double>(c1 - c0);
        const std::size_t r = row(y0 + alpha * (y1 - y0));
        if (grid[r][c] == ' ') grid[r][c] = '.';
      }
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i)
      grid[row(s.ys[i])][col(s.xs[i])] = s.marker;
  }

  os << title_ << "\n";
  if (!y_label_.empty()) os << y_label_ << "\n";
  const std::string y_hi = fixed(y_max, 1);
  const std::string y_lo = fixed(y_min, 1);
  const std::size_t label_width = std::max(y_hi.size(), y_lo.size());
  for (std::size_t r = 0; r < height_; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = std::string(label_width - y_hi.size(), ' ') + y_hi;
    if (r == height_ - 1)
      label = std::string(label_width - y_lo.size(), ' ') + y_lo;
    os << label << " |" << grid[r] << "\n";
  }
  os << std::string(label_width + 1, ' ') << '+'
     << std::string(width_, '-') << "\n";
  {
    const std::string x_lo = fixed(x_min, 2);
    const std::string x_hi = fixed(x_max, 2);
    std::string axis(label_width + 2, ' ');
    axis += x_lo;
    const std::size_t total = label_width + 2 + width_;
    if (axis.size() + x_hi.size() < total)
      axis += std::string(total - axis.size() - x_hi.size(), ' ');
    axis += x_hi;
    os << axis << "\n";
  }
  if (!x_label_.empty())
    os << std::string(label_width + 2, ' ') << x_label_ << "\n";
  std::ostringstream legend;
  for (const Series& s : series_)
    legend << "  " << s.marker << " " << s.name;
  os << "legend:" << legend.str() << "\n";
}

std::string AsciiChart::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace wormsched
