// Always-on checked assertions.
//
// Simulation correctness bugs (a lost flit, a negative surplus count) are
// silent data corruption for an experiment: the run completes and produces
// a wrong figure.  We therefore keep invariant checks enabled in all build
// types; the checks in hot paths are cheap (a compare and a predicted
// branch) relative to the work they guard.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wormsched {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "wormsched: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace wormsched

// Invariant check, enabled in every build type.
#define WS_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::wormsched::assert_fail(#cond, __FILE__, __LINE__, nullptr);        \
    }                                                                      \
  } while (false)

// Invariant check with an explanatory message.
#define WS_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::wormsched::assert_fail(#cond, __FILE__, __LINE__, (msg));          \
    }                                                                      \
  } while (false)
