#include "common/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <system_error>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace wormsched {
namespace {

// True iff `value` is one of the spellings get_flag understands.  Kept in
// sync with get_flag so `--audit=on` is rejected at parse time instead of
// silently reading back as false.
bool is_flag_value(const std::string& value) {
  return value == "true" || value == "false" || value == "1" ||
         value == "0" || value == "yes" || value == "no";
}

// Parses the FULL string into `out` with std::from_chars.  Returns a
// static description of the failure ("is not a ...", "overflows ...") or
// nullptr on success.  Leading '+' and surrounding whitespace are not
// accepted; neither is trailing junk ("10x").
template <typename T>
const char* parse_full(const std::string& text, T* out,
                       const char* type_name, const char* overflow_name) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec == std::errc::result_out_of_range) return overflow_name;
  if (ec != std::errc{} || ptr != last || text.empty()) return type_name;
  return nullptr;
}

[[noreturn]] void numeric_error(const std::string& name,
                                const std::string& value,
                                const char* what) {
  std::fprintf(stderr, "option --%s: '%s' %s\n", name.c_str(), value.c_str(),
               what);
  std::exit(2);
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  options_[name] = Option{help, default_value, /*is_flag=*/false, {}, {}, {}};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "false", /*is_flag=*/true, {}, {}, {}};
}

void CliParser::add_choice_flag(const std::string& name,
                                const std::string& help,
                                std::vector<std::string> choices,
                                const std::string& bare_value,
                                const std::string& default_value) {
  WS_CHECK_MSG(!choices.empty(), "choice flag needs at least one choice");
  const auto known = [&](const std::string& v) {
    for (const auto& c : choices)
      if (c == v) return true;
    return false;
  };
  WS_CHECK_MSG(known(bare_value), "bare value must be a declared choice");
  WS_CHECK_MSG(known(default_value), "default must be a declared choice");
  options_[name] = Option{help,
                          default_value,
                          /*is_flag=*/false,
                          {},
                          std::move(choices),
                          bare_value};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (inline_value && !is_flag_value(*inline_value)) {
        std::fprintf(stderr,
                     "option --%s: '%s' is not a flag value "
                     "(use true/false, 1/0, or yes/no)\n",
                     name.c_str(), inline_value->c_str());
        return false;
      }
      opt.value = inline_value.value_or("true");
    } else if (!opt.choices.empty()) {
      // Choice flags never consume the next token, so scripts that used
      // the option as a plain boolean (`--audit run.json`) keep working.
      const std::string value = inline_value.value_or(opt.bare_value);
      bool known = false;
      for (const auto& c : opt.choices) known = known || c == value;
      if (!known) {
        std::string expect;
        for (const auto& c : opt.choices) {
          if (!expect.empty()) expect += "|";
          expect += c;
        }
        std::fprintf(stderr, "option --%s: '%s' is not one of %s\n",
                     name.c_str(), value.c_str(), expect.c_str());
        return false;
      }
      opt.value = value;
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s expects a value\n", name.c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  WS_CHECK_MSG(it != options_.end(), "undeclared option queried");
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string value = get(name);
  std::int64_t out = 0;
  if (const char* what = parse_full(value, &out, "is not an integer",
                                    "overflows a signed 64-bit integer"))
    numeric_error(name, value, what);
  return out;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const std::string value = get(name);
  // from_chars on an unsigned type rejects '-' outright, so "-1" reports
  // "is not a non-negative integer" rather than wrapping to 2^64-1.
  std::uint64_t out = 0;
  if (const char* what =
          parse_full(value, &out, "is not a non-negative integer",
                     "overflows an unsigned 64-bit integer"))
    numeric_error(name, value, what);
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string value = get(name);
  double out = 0.0;
  if (const char* what = parse_full(value, &out, "is not a number",
                                    "is out of range for a double"))
    numeric_error(name, value, what);
  return out;
}

bool CliParser::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::pair<std::string, std::string>> CliParser::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(options_.size());
  for (const auto& [name, opt] : options_)
    out.emplace_back(name, opt.value.value_or(opt.default_value));
  return out;
}

void add_jobs_option(CliParser& cli, const std::string& default_value) {
  cli.add_option("jobs", "worker threads for multi-seed sweeps (0 = all cores)",
                 default_value);
}

std::size_t resolve_jobs(const CliParser& cli) {
  const std::uint64_t jobs = cli.get_uint("jobs");
  if (jobs == 0) return ThreadPool::hardware_workers();
  return static_cast<std::size_t>(jobs);
}

void add_network_parallel_options(CliParser& cli) {
  cli.add_option("threads",
                 "worker threads for the sharded network tick (>= 1; "
                 "1 = serial kernel)",
                 "1");
  cli.add_option("shards",
                 "shard domains for the network tick (>= 1; default: one "
                 "per thread)",
                 "");
}

NetworkParallelism resolve_network_parallelism(const CliParser& cli) {
  NetworkParallelism out;
  // get_uint already rejects non-numeric, negative, and overflowing
  // values with exit 2; only the zero case is ours to add — a fabric
  // cannot tick with zero threads or zero shard domains.
  const std::uint64_t threads = cli.get_uint("threads");
  if (threads == 0) numeric_error("threads", "0", "must be >= 1");
  if (threads > std::numeric_limits<std::uint32_t>::max())
    numeric_error("threads", cli.get("threads"), "overflows the option");
  out.threads = static_cast<std::uint32_t>(threads);
  const std::string shards_text = cli.get("shards");
  if (shards_text.empty()) {
    out.shards = out.threads;
    return out;
  }
  const std::uint64_t shards = cli.get_uint("shards");
  if (shards == 0) numeric_error("shards", "0", "must be >= 1");
  if (shards > std::numeric_limits<std::uint32_t>::max())
    numeric_error("shards", shards_text, "overflows the option");
  out.shards = static_cast<std::uint32_t>(shards);
  return out;
}

std::string CliParser::usage(const std::string& program) const {
  std::string text = description_ + "\n\nusage: " + program + " [options]\n";
  for (const auto& [name, opt] : options_) {
    text += "  --" + name;
    if (!opt.choices.empty()) {
      text += "[=";
      for (std::size_t i = 0; i < opt.choices.size(); ++i) {
        if (i != 0) text += "|";
        text += opt.choices[i];
      }
      text += "]";
    } else if (!opt.is_flag) {
      text += " <value>";
    }
    text += "\n      " + opt.help;
    if (!opt.choices.empty())
      text += " (bare: " + opt.bare_value +
              "; default: " + opt.default_value + ")";
    else if (!opt.is_flag)
      text += " (default: " + opt.default_value + ")";
    text += "\n";
  }
  return text;
}

}  // namespace wormsched
