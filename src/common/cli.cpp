#include "common/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace wormsched {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  options_[name] = Option{help, default_value, /*is_flag=*/false, {}};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "false", /*is_flag=*/true, {}};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      opt.value = inline_value.value_or("true");
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s expects a value\n", name.c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  WS_CHECK_MSG(it != options_.end(), "undeclared option queried");
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  return std::stoull(get(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool CliParser::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

void add_jobs_option(CliParser& cli, const std::string& default_value) {
  cli.add_option("jobs", "worker threads for multi-seed sweeps (0 = all cores)",
                 default_value);
}

std::size_t resolve_jobs(const CliParser& cli) {
  const std::uint64_t jobs = cli.get_uint("jobs");
  if (jobs == 0) return ThreadPool::hardware_workers();
  return static_cast<std::size_t>(jobs);
}

std::string CliParser::usage(const std::string& program) const {
  std::string text = description_ + "\n\nusage: " + program + " [options]\n";
  for (const auto& [name, opt] : options_) {
    text += "  --" + name;
    if (!opt.is_flag) text += " <value>";
    text += "\n      " + opt.help;
    if (!opt.is_flag) text += " (default: " + opt.default_value + ")";
    text += "\n";
  }
  return text;
}

}  // namespace wormsched
