// Small fixed-size task pool for embarrassingly parallel work.
//
// The sweeps fan independent per-seed simulations across workers; each
// seed is a coarse task (milliseconds to seconds), so a plain mutex +
// condition-variable queue is plenty and keeps the pool auditable.  A
// pool built with `workers <= 1` never spawns a thread: submit() runs the
// task inline, which makes the serial path byte-for-byte the code path a
// `--jobs 1` run takes (no "parallel framework with one worker" skew in
// baselines).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wormsched {

class ThreadPool {
 public:
  /// `workers == 0` asks for one worker per hardware thread; `<= 1`
  /// degenerates to inline execution.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues `task`.  Inline pools run it before returning.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  The first exception
  /// thrown by any task is rethrown here (subsequent ones are dropped).
  void wait_idle();

  /// Runs body(0..n-1) across the pool and waits.  Indices are handed out
  /// dynamically, so uneven task costs still balance.  Inline pools run
  /// the same contract as threaded ones: every index executes even if an
  /// earlier one throws, and the first exception is rethrown at the end.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// The machine's hardware thread count (>= 1).
  [[nodiscard]] static std::size_t hardware_workers();

 private:
  void worker_loop();
  void record_exception(std::exception_ptr error);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<std::function<void()>> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace wormsched
