#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace wormsched {

AsciiTable::AsciiTable(std::string title) : title_(std::move(title)) {}

void AsciiTable::set_header(std::initializer_list<std::string_view> columns) {
  header_.clear();
  for (const auto c : columns) header_.emplace_back(c);
}

void AsciiTable::add_rule() { rows_.emplace_back(); }

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto print_rule = [&os, &widths] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&os, &widths](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  print_rule();
}

std::string AsciiTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace wormsched
