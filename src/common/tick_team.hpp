// Persistent worker team for per-cycle fork/join parallelism.
//
// ThreadPool is built for coarse tasks (per-seed simulations, milliseconds
// each); its mutex + condvar queue and per-submit std::function allocation
// are far too heavy for a fork/join that fires every simulated cycle.
// TickTeam keeps `lanes - 1` workers parked on a barrier and runs one
// callable across all lanes per run() call: two barrier crossings and zero
// allocations per tick, which is what preserves the kernel's
// zero-allocation steady state under threads.
//
// SpinBarrier is sense-reversing via a generation counter: arrivals spin
// briefly (the common case when every lane finishes within a cycle's
// work), then yield, then park on C++20 atomic wait — so an oversubscribed
// machine (more lanes than cores, including the 1-hardware-thread case)
// degrades to futex sleeps instead of burning timeslices.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wormsched {

/// Reusable barrier for a fixed set of `parties` threads.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all `parties` threads have arrived.  The barrier resets
  /// itself; the same set of threads may reuse it any number of times.
  void arrive_and_wait() {
    const std::uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
      return;
    }
    // Short spin first: when every lane's slice of the cycle is similar
    // (the design point) the last arrival is microseconds away.
    for (int spin = 0; spin < 128; ++spin) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
    }
    // Yield a few times before parking: on an oversubscribed machine the
    // straggler needs our core, not our spinning.
    for (int y = 0; y < 4; ++y) {
      std::this_thread::yield();
      if (generation_.load(std::memory_order_acquire) != gen) return;
    }
    while (generation_.load(std::memory_order_acquire) == gen)
      generation_.wait(gen, std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
  const std::uint32_t parties_;
};

/// Fixed team of lanes executing one callable per run() call.  The caller
/// is lane 0; `lanes - 1` worker threads are spawned at construction and
/// live until destruction.  `lanes <= 1` spawns nothing and run() executes
/// inline — the serial path stays byte-for-byte the single-threaded code.
class TickTeam {
 public:
  explicit TickTeam(std::uint32_t lanes);
  ~TickTeam();

  TickTeam(const TickTeam&) = delete;
  TickTeam& operator=(const TickTeam&) = delete;

  [[nodiscard]] std::uint32_t lanes() const { return lanes_; }

  /// Runs fn(lane) on every lane in [0, lanes) concurrently and returns
  /// when all lanes have finished.  The callable is invoked by reference —
  /// no copy, no allocation.  The first exception thrown by any lane is
  /// rethrown here after all lanes have joined the end barrier (the
  /// remaining lanes complete their work first, so the caller sees a
  /// consistent quiesced state).
  template <typename F>
  void run(F&& fn) {
    if (workers_.empty()) {
      fn(std::uint32_t{0});
      return;
    }
    using Fn = std::remove_reference_t<F>;
    run_impl(
        [](void* ctx, std::uint32_t lane) { (*static_cast<Fn*>(ctx))(lane); },
        std::addressof(fn));
  }

 private:
  using Trampoline = void (*)(void*, std::uint32_t);

  void run_impl(Trampoline job, void* ctx);
  void worker_loop(std::uint32_t lane);
  void record_exception();

  const std::uint32_t lanes_;
  SpinBarrier start_;
  SpinBarrier done_;
  // Published before the start barrier, read after it (the barrier's
  // release/acquire pair is the happens-before edge).
  Trampoline job_ = nullptr;
  void* ctx_ = nullptr;
  bool stopping_ = false;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace wormsched
