// Tiny leveled logger.
//
// Simulations are mostly silent; logging is for the examples (which narrate
// what they do) and for debugging router pipelines.  The level is a global
// because the library is single-threaded per simulation by design (the
// cycle kernel owns all state); benches that run scenarios on worker
// threads must configure the level before spawning.
#pragma once

#include <sstream>
#include <string>

namespace wormsched {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits `message` at `level` to stderr with a level prefix; no-op when
/// below the configured level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_trace(const Ts&... parts) {
  if (log_level() <= LogLevel::kTrace)
    log_message(LogLevel::kTrace, detail::concat(parts...));
}
template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(parts...));
}

}  // namespace wormsched
