// Balanced contiguous partitioning for the sharded network tick.
//
// The sharded tick assigns each router to exactly one shard domain and
// commits cross-shard traffic in shard-ascending order.  Determinism
// rests on the ranges being CONTIGUOUS and ASCENDING: the serial kernel
// pushes wire entries in router-ascending order (routers tick ascending,
// each port walk is ascending), so concatenating per-shard send queues
// shard by shard reproduces the serial FIFO contents byte for byte.  Any
// other assignment (round-robin, hash) would break that equivalence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace wormsched {

/// One shard's half-open item range [begin, end).
struct ShardRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  [[nodiscard]] std::uint32_t size() const { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// Splits [0, count) into at most `shards` contiguous, ascending,
/// non-empty ranges whose sizes differ by at most one.  Requesting more
/// shards than items clamps to one item per shard (a 1x1 mesh with
/// --shards 8 yields a single serial shard); `count == 0` yields no
/// shards.  `shards == 0` is treated as 1.
[[nodiscard]] inline std::vector<ShardRange> make_shard_partition(
    std::uint32_t count, std::uint32_t shards) {
  std::vector<ShardRange> ranges;
  if (count == 0) return ranges;
  shards = std::clamp<std::uint32_t>(shards, 1, count);
  ranges.reserve(shards);
  const std::uint32_t base = count / shards;
  const std::uint32_t extra = count % shards;
  std::uint32_t at = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t size = base + (s < extra ? 1 : 0);
    ranges.push_back(ShardRange{at, at + size});
    at += size;
  }
  return ranges;
}

}  // namespace wormsched
