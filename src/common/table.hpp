// ASCII table rendering: the benches print each paper figure/table as an
// aligned text table to stdout.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wormsched {

class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {});

  void set_header(std::initializer_list<std::string_view> columns);

  template <typename... Ts>
  void add_row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format(values)), ...);
    rows_.push_back(std::move(fields));
  }

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  template <typename T>
  static std::string format(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Formats a double with `digits` fractional digits (fixed notation).
[[nodiscard]] std::string fixed(double value, int digits = 2);

}  // namespace wormsched
