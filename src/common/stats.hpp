// Statistical accumulators used by the metrics layer and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wormsched {

class SnapshotReader;
class SnapshotWriter;

/// Streaming mean/variance/min/max (Welford's algorithm): O(1) memory,
/// numerically stable over the multi-million-sample runs of Fig. 5.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

  void reset() { *this = RunningStat{}; }

  /// Checkpoint/restore: doubles round-trip bit-exactly (mean, M2 and sum
  /// are serialized as raw bit patterns), so a restored accumulator
  /// continues producing the identical floating-point stream.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Multi-line ASCII rendering (one row per nonempty bin with a bar).
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exact quantiles over a retained sample set.  For runs that would retain
/// too many samples, construct with a capacity: beyond it the accumulator
/// switches to uniform reservoir sampling (Vitter's algorithm R), which
/// keeps quantile estimates unbiased.
class QuantileEstimator {
 public:
  explicit QuantileEstimator(std::size_t reservoir_capacity = 1u << 20,
                             std::uint64_t seed = 0xC0FFEE);

  void add(double x);

  [[nodiscard]] std::size_t sample_count() const { return seen_; }

  /// q in [0,1]; 0.5 is the median.  Returns 0 for an empty estimator.
  [[nodiscard]] double quantile(double q) const;

  /// Checkpoint/restore: reservoir contents, the replacement RNG state
  /// and the seen count all round-trip, so a restored estimator makes the
  /// identical future replacement decisions.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::uint64_t rng_state_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace wormsched
