#include "common/csv.hpp"

#include <stdexcept>

namespace wormsched {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> fields;
  fields.reserve(columns.size());
  for (const auto c : columns) fields.emplace_back(c);
  write_row(fields);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out_ << ',';
    out_ << escape(f);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace wormsched
