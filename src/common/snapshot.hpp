// Versioned binary snapshot primitives (checkpoint/restore).
//
// A snapshot is a flat byte stream of fixed-width little-endian fields
// grouped into length-prefixed, tagged sections, wrapped in a file
// container that carries the format version, the run's
// wormsched-manifest-v1 provenance JSON, and a CRC32 of the payload.
// Every value is written at full precision — doubles round-trip via
// bit_cast, so restored statistics are bit-identical, which is what the
// restore-equivalence differential tests assert.
//
// Error handling contract: every malformed input (bad magic, unsupported
// version, truncation, CRC mismatch, section-tag mismatch) throws
// SnapshotError with a message that names the problem.  Nothing is ever
// read past the declared bounds, so a corrupted snapshot can fail but
// never invoke undefined behaviour.  CLI front ends catch SnapshotError
// and exit 2.
//
// Compatibility policy (docs/TESTING.md): the payload layout is frozen
// per format version.  Any layout change bumps kSnapshotFormatVersion;
// a committed golden file per version pins the promise that old
// snapshots keep loading (or are rejected with a clear message, never
// misread).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/ring_buffer.hpp"

namespace wormsched {

/// Bumped whenever the payload layout changes.  The reader accepts only
/// its own version; older builds reject newer files with a clear message.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `size` bytes.
[[nodiscard]] std::uint32_t snapshot_crc32(const std::uint8_t* data,
                                           std::size_t size);

class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Exact: the double's bit pattern, not a decimal rendering.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Appends pre-encoded bytes verbatim (no length prefix).  Lets writers
  /// that stream a section body into a side buffer splice it in at the end.
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Opens a tagged, length-prefixed section (sections may nest).  The
  /// length lets a reader skip sections it does not understand.
  void begin_section(std::uint32_t tag);
  void end_section();

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    WS_CHECK_MSG(open_sections_.empty(), "unclosed snapshot section");
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_sections_;  // offsets of length fields
};

class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit SnapshotReader(const std::vector<std::uint8_t>& payload)
      : SnapshotReader(payload.data(), payload.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Tag of the next section without consuming it; 0 when the current
  /// scope has no bytes left (0 is never a valid tag).
  [[nodiscard]] std::uint32_t peek_section() const;
  /// Enters the next section, which must carry `tag`.
  void enter_section(std::uint32_t tag);
  /// Leaves the current section, skipping any unread remainder (forward
  /// compatibility: a reader may ignore trailing fields a newer writer
  /// appended within a section).
  void leave_section();
  /// Skips the next section wholesale.
  void skip_section();

  [[nodiscard]] bool exhausted() const { return pos_ >= limit(); }

 private:
  [[nodiscard]] std::size_t limit() const {
    return section_ends_.empty() ? size_ : section_ends_.back();
  }
  void need(std::uint64_t n) const {
    if (n > limit() - pos_)
      throw SnapshotError("snapshot truncated (read past end of data)");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> section_ends_;
};

/// --- Sequence helpers ----------------------------------------------------

template <typename T, typename Fn>
void save_sequence(SnapshotWriter& w, const RingBuffer<T>& rb, Fn save_elem) {
  w.u64(rb.size());
  for (std::size_t i = 0; i < rb.size(); ++i) save_elem(w, rb[i]);
}

template <typename T, typename Fn>
void restore_sequence(SnapshotReader& r, RingBuffer<T>& rb, Fn load_elem) {
  rb.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) rb.push_back(load_elem(r));
}

template <typename T, typename Fn>
void save_sequence(SnapshotWriter& w, const std::vector<T>& v, Fn save_elem) {
  w.u64(v.size());
  for (const T& e : v) save_elem(w, e);
}

template <typename T, typename Fn>
void restore_sequence(SnapshotReader& r, std::vector<T>& v, Fn load_elem) {
  v.clear();
  const std::uint64_t n = r.u64();
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(load_elem(r));
}

inline void save_doubles(SnapshotWriter& w, const std::vector<double>& v) {
  save_sequence(w, v, [](SnapshotWriter& o, double x) { o.f64(x); });
}
inline void restore_doubles(SnapshotReader& r, std::vector<double>& v) {
  restore_sequence(r, v, [](SnapshotReader& i) { return i.f64(); });
}

/// --- File container ------------------------------------------------------
///
/// Layout: magic "WSNPSHOT" | u32 version | u32 flags (0) |
///         u64 manifest_len + manifest JSON (wormsched-manifest-v1) |
///         u64 payload_len + payload | u32 crc32(payload).
/// Checks run in that order, so a wrong-version file is reported as such
/// even when the rest is unreadable.

struct SnapshotFile {
  std::uint32_t version = kSnapshotFormatVersion;
  std::string manifest_json;  // provenance, carried verbatim
  std::vector<std::uint8_t> payload;
};

/// Throws std::runtime_error when the path cannot be written.
void write_snapshot_file(const std::string& path,
                         const std::string& manifest_json,
                         const std::vector<std::uint8_t>& payload);

/// Throws SnapshotError on any malformed input (see file comment).
[[nodiscard]] SnapshotFile read_snapshot_file(const std::string& path);

/// Container parse of an in-memory image (the file reader's core; also
/// what the corruption tests drive directly).
[[nodiscard]] SnapshotFile parse_snapshot_bytes(
    const std::vector<std::uint8_t>& bytes);

}  // namespace wormsched
