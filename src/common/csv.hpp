// Minimal CSV emission for experiment outputs.
//
// Every bench writes its series both as an ASCII table (stdout) and as a
// CSV file so the figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace wormsched {

class CsvWriter {
 public:
  /// Opens (and truncates) `path`.  Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row; must be the first row written.
  void header(std::initializer_list<std::string_view> columns);

  /// Appends one row.  Values are formatted with operator<<; fields
  /// containing commas/quotes/newlines are quoted per RFC 4180.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format(values)), ...);
    write_row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string format(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  void write_row(const std::vector<std::string>& fields);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace wormsched
