// Deterministic pseudo-random number generation.
//
// Every experiment in the repository draws from exactly one seeded Rng per
// scenario so that figures regenerate bit-identically across runs and
// machines.  The generator is xoshiro256** (Blackman & Vigna): fast,
// 256-bit state, and — unlike std::mt19937 — identical output on every
// platform without depending on libstdc++ distribution internals.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace wormsched {

class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64
  /// (the seeding procedure recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform over [0, bound).  Unbiased (Lemire's rejection method).
  /// `bound` must be nonzero.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer over the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real over [0, 1) with 53 bits of precision.
  double uniform_real();

  /// Uniform real over [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed real with rate `lambda` (mean 1/lambda).
  double exponential(double lambda);

  /// Geometric-like truncated exponential integer on [lo, hi]:
  /// P(k) proportional to exp(-lambda * k), sampled by rejection.  This is
  /// the packet-length law of the paper's Fig. 6 experiment
  /// ("exponentially distributed with lambda = 0.2, in the range 1 to 64").
  std::int64_t truncated_exponential_int(double lambda, std::int64_t lo,
                                         std::int64_t hi);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Derives an independent child generator; used to give each flow its own
  /// stream so adding a flow does not perturb the others' draws.
  Rng split();

  /// Checkpoint/restore access to the raw 256-bit state.  set_state()
  /// rejects the all-zero state (the one fixed point of xoshiro256**).
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const { return state_; }
  void set_state(const State& state) {
    WS_CHECK_MSG((state[0] | state[1] | state[2] | state[3]) != 0,
                 "all-zero xoshiro state");
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace wormsched
