// Terminal line charts.
//
// The figure benches regenerate the paper's *plots*, not just its
// numbers; AsciiChart renders multiple (x, y) series into a character
// grid with axes and a legend, so `bench_fig5_delay` and friends can
// show the crossover shapes directly in the terminal next to the exact
// tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wormsched {

class AsciiChart {
 public:
  /// `width` x `height` are the plot-area dimensions in characters
  /// (axes and labels are added around them).
  AsciiChart(std::string title, std::size_t width = 64,
             std::size_t height = 16);

  /// Adds a named series.  Each series gets the next marker character
  /// from '*', 'o', '+', 'x', '#', '@'.  Points need not be sorted.
  void add_series(const std::string& name,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys);

  /// Axis labels (optional).
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

}  // namespace wormsched
