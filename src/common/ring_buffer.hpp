// Growable ring buffer: the FIFO used for per-flow packet queues and
// router VC buffers.
//
// std::deque allocates in small blocks and fragments badly at the scale of
// a 4M-cycle simulation; this buffer keeps elements contiguous (modulo one
// wrap point), doubles geometrically, and supports indexed peeking, which
// the wormhole router needs to inspect buffered flits beyond the head.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "common/assert.hpp"

namespace wormsched {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  RingBuffer(const RingBuffer& other) { *this = other; }
  RingBuffer& operator=(const RingBuffer& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    return *this;
  }
  RingBuffer(RingBuffer&& other) noexcept { swap(other); }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ~RingBuffer() {
    clear();
    operator delete[](storage_, std::align_val_t(alignof(T)));
  }

  void swap(RingBuffer& other) noexcept {
    std::swap(storage_, other.storage_);
    std::swap(capacity_, other.capacity_);
    std::swap(head_, other.head_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    ::new (slot(size_)) T(std::move(value));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* p = ::new (slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  [[nodiscard]] T& front() {
    WS_CHECK(!empty());
    return *slot(0);
  }
  [[nodiscard]] const T& front() const {
    WS_CHECK(!empty());
    return *slot(0);
  }
  [[nodiscard]] T& back() {
    WS_CHECK(!empty());
    return *slot(size_ - 1);
  }

  /// Element `i` positions behind the head (0 == front).
  [[nodiscard]] T& operator[](std::size_t i) {
    WS_CHECK(i < size_);
    return *slot(i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    WS_CHECK(i < size_);
    return *slot(i);
  }

  T pop_front() {
    WS_CHECK(!empty());
    T* p = slot(0);
    T value = std::move(*p);
    p->~T();
    head_ = next(head_);
    --size_;
    return value;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) slot(i)->~T();
    head_ = 0;
    size_ = 0;
  }

  void reserve(std::size_t wanted) {
    if (wanted <= capacity_) return;
    std::size_t new_cap = capacity_ == 0 ? 8 : capacity_;
    while (new_cap < wanted) new_cap *= 2;
    relocate(new_cap);
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t pos) const {
    return pos + 1 == capacity_ ? 0 : pos + 1;
  }
  [[nodiscard]] T* slot(std::size_t logical) const {
    std::size_t pos = head_ + logical;
    if (pos >= capacity_) pos -= capacity_;
    return std::launder(reinterpret_cast<T*>(storage_) + pos);
  }

  void grow() { relocate(capacity_ == 0 ? 8 : capacity_ * 2); }

  void relocate(std::size_t new_cap) {
    auto* new_storage = static_cast<std::byte*>(operator new[](
        new_cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      T* src = slot(i);
      ::new (reinterpret_cast<T*>(new_storage) + i) T(std::move(*src));
      src->~T();
    }
    operator delete[](storage_, std::align_val_t(alignof(T)));
    storage_ = new_storage;
    capacity_ = new_cap;
    head_ = 0;
  }

  std::byte* storage_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wormsched
