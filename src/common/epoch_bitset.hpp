// Epoch-stamped bitset over a dense index space.
//
// The million-flow scheduler pools need a membership structure that
// (a) tests and flips single bits in O(1) with no branches on the hot
// path, (b) clears the WHOLE set in O(1) — a 1M-bit memset per restore
// or reset would dominate checkpoint replay — and (c) iterates set bits
// in index order at one `countr_zero` per bit, the same trick the PR-3
// router pipeline uses for its pending masks.
//
// The O(1) clear comes from stamping every 64-bit word with the epoch in
// which it was last written: a word whose stamp is stale reads as zero.
// clear_all() just bumps the epoch.  When the 32-bit epoch wraps, every
// stamp is reset once — amortized nothing.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace wormsched {

class EpochBitset {
 public:
  EpochBitset() = default;
  explicit EpochBitset(std::size_t size) { resize(size); }

  void resize(std::size_t size) {
    size_ = size;
    count_ = 0;
    words_.assign((size + 63) / 64, 0);
    stamps_.assign(words_.size(), epoch_);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool any() const { return count_ > 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    WS_CHECK(i < size_);
    const std::size_t w = i >> 6;
    if (stamps_[w] != epoch_) return false;
    return (words_[w] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    WS_CHECK(i < size_);
    const std::size_t w = i >> 6;
    std::uint64_t word = stamps_[w] == epoch_ ? words_[w] : 0;
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ += (word & bit) == 0;
    words_[w] = word | bit;
    stamps_[w] = epoch_;
  }

  void clear(std::size_t i) {
    WS_CHECK(i < size_);
    const std::size_t w = i >> 6;
    if (stamps_[w] != epoch_) return;
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ -= (words_[w] & bit) != 0;
    words_[w] &= ~bit;
  }

  /// O(1): stale-stamps every word by bumping the epoch.
  void clear_all() {
    count_ = 0;
    if (++epoch_ == 0) {
      // Epoch wrapped; stamp 0 would alias long-stale words as current.
      for (std::size_t w = 0; w < words_.size(); ++w) {
        words_[w] = 0;
        stamps_[w] = 0;
      }
    }
  }

  /// First set index >= `from`, or npos.  One countr_zero per probe.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t next_set(std::size_t from) const {
    if (from >= size_) return npos;
    std::size_t w = from >> 6;
    std::uint64_t word = stamps_[w] == epoch_ ? words_[w] : 0;
    word &= ~std::uint64_t{0} << (from & 63);
    for (;;) {
      if (word != 0) {
        const std::size_t i =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        return i < size_ ? i : npos;
      }
      if (++w >= words_.size()) return npos;
      word = stamps_[w] == epoch_ ? words_[w] : 0;
    }
  }

  /// Calls `fn(index)` for every set bit in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = stamps_[w] == epoch_ ? words_[w] : 0;
      while (word != 0) {
        const std::size_t i =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        fn(i);
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

}  // namespace wormsched
