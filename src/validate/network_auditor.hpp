// Runtime conservation auditor for the wormhole network.
//
// Hooks Network's cycle-end observer and checks that nothing the fabric
// carries is created or destroyed:
//
//   * Flit conservation — every flit ever injected is exactly one of:
//     still queued at its source NIC, buffered in a router input VC, in
//     flight on a link, or delivered.
//   * Credit conservation (credit flow control, finite buffers) — for
//     every (router, non-local output, VC class): held credits + flits
//     on the outgoing wire + flits in the downstream input buffer +
//     credits on the return wire (including any a fault quarantined)
//     always sum to exactly buffer_depth.
//   * On/off conservation (on/off flow control, finite buffers) — no
//     input VC ever holds more than buffer_depth flits (the watermark
//     headroom absorbed every in-flight flit), and each link's on/off
//     handshake is in sync: with no signal in flight the receiver's
//     peer_on mirrors the sender's !off_sent, and with signals in
//     flight the newest one matches the sender's current state —
//     signal flits are conserved, never dropped or reordered.  Under
//     infinite buffers neither protocol runs, so only flit
//     conservation and the structural checks apply.
//   * Active-set consistency — a router holding work is enrolled in the
//     live set, and the live counter matches the flags (the O(1) idle()
//     fast path depends on both).
//   * Pending-mask consistency — each router's routable/requesting/bound
//     bitmasks match what the per-unit flags imply (the bitmask-sparse
//     pipeline trusts the masks to decide which units to visit).
//
// Two modes.  kFull re-derives everything from scratch each check — an
// O(fabric) rescan whose cost dominated audited runs (~58% of mesh8x8
// stage ticks in the v3 baseline).  kIncremental (the default) instead
// maintains running ledgers mirroring the fabric's counters and updates
// them in O(touched) from the CycleDelta the network collects; each
// cycle it compares the ledgers against the actual state of only the
// units that moved, escalating to the full-scan oracle the moment
// anything disagrees, and cross-checks the whole ledger set against a
// full rescan every `full_rescan_every` checks.  The full scan is kept
// verbatim as the oracle, so both modes report canonical violation ids
// and payloads when the fabric itself is broken; incremental-only
// discrepancies (ledger vs fabric drift) use distinct `net.ledger.*`
// ids.
//
// The checks hold with fault injection enabled — faults delay flits and
// credits but never drop them — so fault runs stress the invariants, not
// the checker.  Violations go to the shared AuditLog with cycle, router
// and port context.  Call finish() when the simulation ends: it flushes
// the tail window a `check_every > 1` cadence would otherwise leave
// unaudited and runs one last full-scan cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace wormsched::validate {

/// How the auditor derives its verdicts.  (An "off" setting is a harness
/// concern: not attaching the auditor at all.)
enum class AuditMode {
  /// O(touched) ledger updates per cycle + periodic full-rescan
  /// cross-check.  Needs the network's CycleDelta (wants_delta()).
  kIncremental,
  /// Full O(fabric) rescan every checked cycle (the oracle).
  kFull,
};

struct NetworkAuditorConfig {
  AuditMode mode = AuditMode::kIncremental;
  /// Verification cadence.  In kFull mode the whole rescan is skipped on
  /// off cycles; in kIncremental mode ledgers still ingest every cycle's
  /// delta (they must) and only the compare pass is sampled.  The
  /// cycle-end hook itself fires every cycle.
  Cycle check_every = 1;
  /// kIncremental only: every this-many checks, cross-check every ledger
  /// against a full rescan and run the oracle checks outright.  Bounds
  /// how long silent ledger drift could hide; 0 disables periodic
  /// rescans (finish() still runs one).
  Cycle full_rescan_every = 256;
  /// kIncremental only: cadence of the per-touched-router pending-mask
  /// re-derivation, the costliest O(touched) check (~num_units flag
  /// reads per router).  Sampled checks plus the periodic full rescan
  /// still bound staleness; 1 restores every-check derivation.
  Cycle mask_check_every = 16;
};

class NetworkAuditor final : public wormhole::NetworkObserver {
 public:
  NetworkAuditor(const NetworkAuditorConfig& config, AuditLog& log);

  void on_cycle_end(Cycle now, const wormhole::Network& network,
                    const wormhole::CycleDelta& delta) override;
  [[nodiscard]] bool wants_delta() const override {
    return config_.mode == AuditMode::kIncremental;
  }

  /// Simulation-end flush: audits the tail window that a sampled cadence
  /// (`check_every > 1`) never reaches, and in incremental mode runs a
  /// final full-rescan cross-check of every ledger.  Idempotent per run;
  /// the harness calls it after the last tick.
  void finish(Cycle now, const wormhole::Network& network);

  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  /// Full O(fabric) rescans performed (every check in kFull mode; the
  /// snapshot, periodic cross-checks, escalations, and finish() in
  /// kIncremental mode).
  [[nodiscard]] std::uint64_t full_rescans() const { return full_rescans_; }

 private:
  // --- Full-scan oracle (canonical violation ids/payloads) -----------
  void full_scan(Cycle now, const wormhole::Network& net);
  void check_flit_conservation(Cycle now, const wormhole::Network& net);
  void check_credit_conservation(Cycle now, const wormhole::Network& net);
  /// On/off oracle: buffer occupancy bound + per-link signal handshake
  /// sync.  Expects bin_wires() to have just run (scratch_last_signal_).
  void check_onoff_invariants(Cycle now, const wormhole::Network& net);
  void check_active_set(Cycle now, const wormhole::Network& net);
  void check_router_masks(Cycle now, const wormhole::Network& net);
  void check_one_router_masks(Cycle now, const wormhole::Network& net,
                              std::uint32_t n);
  /// On/off incremental: one touched router's input occupancies stay
  /// within buffer_depth (net.onoff.overflow).
  void check_one_router_occupancy(Cycle now, const wormhole::Network& net,
                                  std::uint32_t n);
  /// Bins both wires + the quarantine into the scratch arrays.
  void bin_wires(const wormhole::Network& net);

  // --- Incremental ledgers -------------------------------------------
  [[nodiscard]] std::size_t unit_key(NodeId node, wormhole::Direction d,
                                     std::uint32_t cls) const {
    return (static_cast<std::size_t>(node.value()) *
                wormhole::kNumDirections +
            static_cast<std::size_t>(d)) *
               vcs_ +
           cls;
  }
  /// Seeds every ledger from the network's actual state (also the resync
  /// path after an escalation).
  void snapshot(const wormhole::Network& net);
  /// Folds one cycle's movements into the ledgers (every cycle) and, when
  /// `verify` is set, compares ledger against fabric for everything the
  /// cycle touched; returns false on any mismatch (caller escalates).
  /// One function because the touched-router walk serves both duties and
  /// per-unit compares must run after the whole delta has been applied
  /// (one unit can appear in several event streams in the same cycle).
  [[nodiscard]] bool ingest(Cycle now, const wormhole::Network& net,
                            const wormhole::CycleDelta& delta, bool verify);
  /// Compares every ledger against a fresh full scan (`net.ledger.drift`
  /// on mismatch) and runs the oracle checks.
  void full_rescan_crosscheck(Cycle now, const wormhole::Network& net);
  /// A ledger/fabric mismatch means either the fabric broke an invariant
  /// or the delta stream lied: run the oracle for a canonical verdict,
  /// then resync so one fault does not cascade into a report per cycle.
  void escalate(Cycle now, const wormhole::Network& net);

  NetworkAuditorConfig config_;
  AuditLog& log_;
  std::uint64_t checks_ = 0;
  std::uint64_t full_rescans_ = 0;
  bool finished_ = false;

  // Cadence state (kIncremental): the hook runs every cycle, so the
  // `now % check_every` / `checks_ % N` schedules are tracked with a
  // next-cycle mark and countdowns instead of three 64-bit divisions per
  // cycle on the hot path.  Firing cycles are identical to the modulo
  // forms.
  Cycle next_check_ = 0;
  std::uint64_t rescan_countdown_ = 0;
  std::uint64_t mask_countdown_ = 0;

  // Geometry, cached at first observation.
  std::uint32_t nodes_ = 0;
  std::uint32_t vcs_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t upn_ = 0;  // units per node: kNumDirections * vcs_
  bool initialized_ = false;
  // Flow-control mode, cached at first observation.  credit_ledgers_
  // (credit scheme + finite buffers) gates everything that models the
  // credit protocol: led_credits_/led_in_buf_ maintenance, their drift
  // compares, and the credit-conservation oracle.  onoff_ (on/off scheme
  // + finite buffers) gates the occupancy/handshake oracle.  Infinite
  // buffers clear both — no backpressure protocol exists to audit.
  bool credit_ledgers_ = true;
  bool onoff_ = false;

  // Ledger state (kIncremental).  Globals are whole-fabric counters;
  // per-unit vectors are keyed by unit_key().  Local input units carry no
  // credit protocol (no returning credit event), so they are tracked only
  // through the per-router buffered aggregate, never per unit.
  Flits led_injected_ = 0;
  Flits led_nic_ = 0;
  Flits led_buffered_total_ = 0;
  std::int64_t led_wire_flits_total_ = 0;
  std::uint64_t led_delivered_ = 0;
  // Per-router/per-unit ledgers are int32 on purpose: every value is
  // bounded by buffer_depth or one router's occupancy, and the narrow
  // type halves the cache footprint the per-event hot loops walk.
  std::vector<std::int32_t> led_buffered_;    // per router
  std::vector<std::int32_t> led_credits_;     // per output unit
  std::vector<std::int32_t> led_in_buf_;      // per non-local input unit
  std::vector<std::int32_t> led_wire_flits_;  // keyed by (to, in, cls)
  std::vector<std::int32_t> led_wire_credits_;  // keyed by (to, out, cls)
  std::vector<std::uint8_t> led_live_;        // active-set shadow
  std::uint32_t led_live_count_ = 0;

  // peer_key_[unit_key(node, d, cls)] = unit_key(neighbor(node, d),
  // opposite(d), cls): the downstream wire bin a movement out of (or into)
  // that port lands in, precomputed so the per-event hot path never calls
  // into the topology.  SIZE_MAX for local ports and mesh edges — wire
  // events never occur there.
  std::vector<std::size_t> peer_key_;

  // Scratch for wire binning, reused by every full scan so a rescan in
  // steady state allocates nothing.  scratch_last_signal_ records, per
  // (to, out, cls) bin, the kind of the NEWEST in-flight on/off signal
  // (0 = none; else WireCredit::Kind) — the wire is FIFO, so the last
  // one binned is the last one sent.
  std::vector<std::uint32_t> scratch_wire_flits_;
  std::vector<std::uint32_t> scratch_wire_credits_;
  std::vector<std::uint8_t> scratch_last_signal_;
};

}  // namespace wormsched::validate
