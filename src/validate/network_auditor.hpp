// Runtime conservation auditor for the wormhole network.
//
// Hooks Network's cycle-end observer and checks, every check_every
// cycles, that nothing the fabric carries is created or destroyed:
//
//   * Flit conservation — every flit ever injected is exactly one of:
//     still queued at its source NIC, buffered in a router input VC, in
//     flight on a link, or delivered.
//   * Credit conservation — for every (router, non-local output, VC
//     class): held credits + flits on the outgoing wire + flits in the
//     downstream input buffer + credits on the return wire (including
//     any a fault quarantined) always sum to exactly buffer_depth.
//   * Active-set consistency — a router holding work is enrolled in the
//     live set, and the live counter matches the flags (the O(1) idle()
//     fast path depends on both).
//   * Pending-mask consistency — each router's routable/requesting/bound
//     bitmasks match what the per-unit flags imply (the bitmask-sparse
//     pipeline trusts the masks to decide which units to visit).
//
// The checks hold with fault injection enabled — faults delay flits and
// credits but never drop them — so fault runs stress the invariants, not
// the checker.  Violations go to the shared AuditLog with cycle, router
// and port context.
#pragma once

#include <cstdint>

#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace wormsched::validate {

struct NetworkAuditorConfig {
  /// Conservation is O(routers + wire occupancy) per check; raise this to
  /// sample on longer runs.  The cycle-end hook still fires every cycle.
  Cycle check_every = 1;
};

class NetworkAuditor final : public wormhole::NetworkObserver {
 public:
  NetworkAuditor(const NetworkAuditorConfig& config, AuditLog& log);

  void on_cycle_end(Cycle now, const wormhole::Network& network) override;

  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }

 private:
  void check_flit_conservation(Cycle now, const wormhole::Network& net);
  void check_credit_conservation(Cycle now, const wormhole::Network& net);
  void check_active_set(Cycle now, const wormhole::Network& net);
  void check_router_masks(Cycle now, const wormhole::Network& net);

  NetworkAuditorConfig config_;
  AuditLog& log_;
  std::uint64_t checks_ = 0;
};

}  // namespace wormsched::validate
