// Violation sink shared by every runtime auditor.
//
// Auditors (err_auditor, network_auditor) report invariant violations
// here instead of asserting directly, so one policy decides what a
// violation does: in Debug builds (!NDEBUG) the default mode prints the
// full context and aborts — a fuzz run dies on the first broken bound
// with everything needed to reproduce it — while Release builds count
// violations and keep the first few, letting long sweeps finish and
// report totals.  Tests that *inject* violations on purpose construct
// the log in kCount mode so the auditor's detection itself is testable
// in every build type.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace wormsched::validate {

struct Violation {
  std::string check;   // dotted id, e.g. "err.lemma1.upper"
  std::string detail;  // full context: round, flow, cycle, values
};

class AuditLog {
 public:
  enum class Mode {
    kDefault,  // abort in Debug (!NDEBUG), count in Release
    kCount,    // always count (for tests that inject violations)
  };

  explicit AuditLog(Mode mode = Mode::kDefault) : mode_(mode) {}

  /// Records one violation.  May not return (see Mode).  Thread-safe: the
  /// sharded network tick runs ERR opportunity listeners on shard worker
  /// threads, so several auditors sharing one log can report
  /// concurrently; the counter, the kept list, and the on_report hook are
  /// serialized under one mutex.
  void report(std::string check, std::string detail);

  /// Hook invoked on every report *before* any abort — the observability
  /// layer uses it to record the violation into the trace ring and dump
  /// the surrounding event window while the evidence still exists.
  void set_on_report(std::function<void(const Violation&)> hook) {
    on_report_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }
  [[nodiscard]] bool clean() const { return count() == 0; }
  /// The first kKeepLimit violations, verbatim.  Call only from quiesced
  /// (single-threaded) code — the reference would otherwise race with a
  /// concurrent report().
  [[nodiscard]] const std::vector<Violation>& kept() const { return kept_; }
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_ = 0;
    kept_.clear();
  }

  static constexpr std::size_t kKeepLimit = 32;

 private:
  Mode mode_;
  mutable std::mutex mutex_;
  std::uint64_t total_ = 0;
  std::vector<Violation> kept_;
  std::function<void(const Violation&)> on_report_;
};

}  // namespace wormsched::validate
