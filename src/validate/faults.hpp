// Deterministic, seed-driven fault injection.
//
// ScheduledFaults implements the wormhole::FaultModel hooks from a
// FaultSpec: time is cut into fixed `window`-cycle epochs and every
// decision — is the fabric stalled, is this node's credit return starved,
// is this source muted or bursting — is a pure hash of
// (seed, fault kind, epoch, node).  Nothing depends on call order or call
// count, so the dense and active-set execution paths (which interleave
// their queries differently) observe the *identical* fault schedule; that
// property is what the flit-for-flit differential tests rely on.
//
// Faults perturb timing and traffic only.  No flit or credit is ever
// dropped, so every conservation invariant the network auditor checks
// must keep holding with faults enabled — which is exactly what makes
// fault runs a stress test of the invariants rather than of the checker.
//
// apply_trace_faults() is the standalone-scheduler analogue: it perturbs
// an arrival trace (jitter, drops, duplicate bursts) deterministically.
// Any trace is a valid scheduler input, so the ERR bounds must survive
// every such perturbation.
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.hpp"
#include "common/types.hpp"
#include "traffic/workload.hpp"
#include "wormhole/fault_hooks.hpp"

namespace wormsched::validate {

struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Epoch length in cycles; every fault decision is per-epoch.
  Cycle window = 64;

  /// P(an epoch opens with a fabric-wide link stall) and its length.
  double link_stall_rate = 0.0;
  Cycle link_stall_cycles = 4;

  /// P(a node's credit returns are starved for the start of an epoch).
  /// Affected credits are quarantined until the stall window closes.
  double credit_stall_rate = 0.0;
  Cycle credit_stall_cycles = 16;

  /// P(a traffic source is muted for an epoch) — activate/deactivate churn.
  double churn_rate = 0.0;

  /// P(a source bursts for an epoch): its injection rate is multiplied and
  /// its packets are redirected to an epoch-chosen hotspot node.
  double burst_rate = 0.0;
  double burst_multiplier = 4.0;

  /// Fabric size for burst-destination choice (0 disables redirection).
  /// Filled in by the harness from the topology.
  std::uint32_t num_nodes = 0;

  /// Trace-fault analogue knobs (apply_trace_faults): max per-arrival
  /// cycle jitter; churn_rate drops arrivals, burst_rate duplicates them.
  Cycle trace_jitter_max = 8;

  /// All fault classes on at moderate rates — the fuzz-suite default.
  [[nodiscard]] static FaultSpec chaos(std::uint64_t seed);

  [[nodiscard]] std::string describe() const;
};

/// The FaultModel the wormhole substrate consults.  Stateless after
/// construction; safe to share across threads.
class ScheduledFaults final : public wormhole::FaultModel {
 public:
  explicit ScheduledFaults(const FaultSpec& spec);

  [[nodiscard]] bool link_stalled(Cycle now) const override;
  [[nodiscard]] Cycle credit_hold_cycles(Cycle now,
                                         NodeId node) const override;
  [[nodiscard]] double injection_multiplier(Cycle now,
                                            NodeId node) const override;
  [[nodiscard]] std::optional<NodeId> burst_destination(
      Cycle now, NodeId src) const override;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  enum Kind : std::uint64_t {
    kLink = 1,
    kCredit = 2,
    kChurn = 3,
    kBurst = 4,
    kBurstDest = 5,
  };

  /// Uniform [0,1) hash of (seed, kind, epoch, node).
  [[nodiscard]] double u01(Kind kind, std::uint64_t epoch,
                           std::uint64_t node) const;

  FaultSpec spec_;
};

/// Applies `spec`'s trace faults to an arrival trace: per-arrival cycle
/// jitter in [0, trace_jitter_max], epoch-hashed drops (churn_rate) and
/// duplications (burst_rate).  Deterministic in (spec, input); the result
/// is re-sorted by cycle with arrival order preserved within a cycle.
/// Returns the input unchanged when spec.enabled is false.
[[nodiscard]] traffic::Trace apply_trace_faults(const FaultSpec& spec,
                                                const traffic::Trace& trace);

/// Declares the shared fault-injection CLI options (--faults et al.) so
/// the flags read identically in the CLI, benches and test drivers.
void add_fault_options(CliParser& cli);

/// Builds a FaultSpec from parsed fault options; enabled iff --faults.
[[nodiscard]] FaultSpec fault_spec_from_cli(const CliParser& cli);

}  // namespace wormsched::validate
