#include "validate/network_auditor.hpp"

#include <sstream>
#include <vector>

#include "common/assert.hpp"

namespace wormsched::validate {

namespace {

using wormhole::Direction;
using wormhole::kNumDirections;
using wormhole::Network;

[[nodiscard]] Direction opposite(Direction d) {
  switch (d) {
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

}  // namespace

NetworkAuditor::NetworkAuditor(const NetworkAuditorConfig& config,
                               AuditLog& log)
    : config_(config), log_(log) {
  WS_CHECK(config.check_every >= 1);
}

void NetworkAuditor::on_cycle_end(Cycle now, const Network& network) {
  if (now % config_.check_every != 0) return;
  ++checks_;
  check_flit_conservation(now, network);
  check_credit_conservation(now, network);
  check_active_set(now, network);
  check_router_masks(now, network);
}

void NetworkAuditor::check_flit_conservation(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  Flits buffered = 0;
  for (std::uint32_t n = 0; n < nodes; ++n)
    buffered += net.router(NodeId(n)).buffered_flits();
  const Flits in_flight = static_cast<Flits>(net.flit_wire().size());
  const Flits accounted = net.nic_backlog_flits() + buffered + in_flight +
                          static_cast<Flits>(net.delivered_flits());
  if (accounted != net.injected_flits()) {
    std::ostringstream os;
    os << "cycle=" << now << " injected=" << net.injected_flits()
       << " != nic=" << net.nic_backlog_flits() << " + buffered=" << buffered
       << " + wire=" << in_flight << " + delivered=" << net.delivered_flits();
    log_.report("net.conservation.flits", os.str());
  }
}

void NetworkAuditor::check_credit_conservation(Cycle now,
                                               const Network& net) {
  const auto& topo = net.topology();
  const std::uint32_t nodes = topo.num_nodes();
  const std::uint32_t vcs = net.config().router.num_vcs;
  const std::uint32_t depth = net.config().router.buffer_depth;
  const auto key = [vcs](NodeId node, Direction d, std::uint32_t cls) {
    return (static_cast<std::size_t>(node.value()) * kNumDirections +
            static_cast<std::size_t>(d)) *
               vcs +
           cls;
  };

  // One pass over each wire, binned by (destination, port, class): a flit
  // heading to (to, in, cls) came from exactly one upstream output, and a
  // credit heading to (to, out, cls) replenishes exactly one output VC.
  std::vector<std::uint32_t> wire_flits(
      static_cast<std::size_t>(nodes) * kNumDirections * vcs, 0);
  std::vector<std::uint32_t> wire_credits(wire_flits.size(), 0);
  const auto& fw = net.flit_wire();
  for (std::size_t i = 0; i < fw.size(); ++i) {
    const Network::WireFlit& wf = fw[i];
    ++wire_flits[key(wf.to, wf.in, wf.cls)];
  }
  const auto& cw = net.credit_wire();
  for (std::size_t i = 0; i < cw.size(); ++i) {
    const Network::WireCredit& wc = cw[i];
    ++wire_credits[key(wc.to, wc.out, wc.cls)];
  }
  const auto& cq = net.credit_quarantine();
  for (std::size_t i = 0; i < cq.size(); ++i) {
    const Network::WireCredit& wc = cq[i];
    ++wire_credits[key(wc.to, wc.out, wc.cls)];
  }

  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeId node(n);
    const auto& router = net.router(node);
    for (std::uint32_t d = 1; d < kNumDirections; ++d) {  // skip kLocal sink
      const auto out = static_cast<Direction>(d);
      const NodeId neighbor = topo.neighbor(node, out);
      if (!neighbor.is_valid()) continue;  // mesh edge: port unused
      const Direction far_in = opposite(out);
      for (std::uint32_t cls = 0; cls < vcs; ++cls) {
        const std::uint32_t total =
            router.output_credits(out, cls) +
            wire_flits[key(neighbor, far_in, cls)] +
            static_cast<std::uint32_t>(
                net.router(neighbor).input_buffer_size(far_in, cls)) +
            wire_credits[key(node, out, cls)];
        if (total != depth) {
          std::ostringstream os;
          os << "cycle=" << now << " router=" << n << " out=" << d
             << " cls=" << cls << ": credits="
             << router.output_credits(out, cls) << " + wire_flits="
             << wire_flits[key(neighbor, far_in, cls)] << " + downstream_buf="
             << net.router(neighbor).input_buffer_size(far_in, cls)
             << " + wire_credits=" << wire_credits[key(node, out, cls)]
             << " != depth=" << depth;
          log_.report("net.conservation.credits", os.str());
        }
      }
    }
  }
}

void NetworkAuditor::check_active_set(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  std::uint32_t live = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeId node(n);
    if (net.router_live(node)) ++live;
    if (!net.router(node).drained() && !net.router_live(node)) {
      std::ostringstream os;
      os << "cycle=" << now << " router=" << n
         << " holds work but is not in the active set";
      log_.report("net.active_set.lost", os.str());
    }
  }
  if (live != net.live_router_count()) {
    std::ostringstream os;
    os << "cycle=" << now << " live flags=" << live
       << " but counter=" << net.live_router_count();
    log_.report("net.active_set.count", os.str());
  }
}

void NetworkAuditor::check_router_masks(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  const std::uint32_t vcs = net.config().router.num_vcs;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const auto& router = net.router(NodeId(n));
    std::uint64_t routable = 0;
    std::uint64_t requesting = 0;
    std::uint64_t bound = 0;
    for (std::uint32_t d = 0; d < kNumDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      for (std::uint32_t cls = 0; cls < vcs; ++cls) {
        const std::uint64_t unit_bit = std::uint64_t{1}
                                       << router.unit(dir, cls);
        if (!router.input_routed(dir, cls) &&
            router.input_buffer_size(dir, cls) > 0) {
          routable |= unit_bit;
        }
        if (router.arbiter(dir, cls).pending_total() > 0)
          requesting |= unit_bit;
        if (router.output_bound(dir, cls)) bound |= unit_bit;
      }
    }
    const auto report = [&](const char* which, std::uint64_t expected,
                            std::uint64_t actual) {
      if (expected == actual) return;
      std::ostringstream os;
      os << "cycle=" << now << " router=" << n << " " << which
         << " mask=" << std::hex << actual << " but flags imply "
         << expected;
      log_.report("net.masks.stale", os.str());
    };
    report("routable_inputs", routable, router.routable_inputs_mask());
    report("requesting_outputs", requesting, router.requesting_outputs_mask());
    report("bound_outputs", bound, router.bound_outputs_mask());
  }
}

}  // namespace wormsched::validate
