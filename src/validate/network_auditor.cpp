#include "validate/network_auditor.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace wormsched::validate {

namespace {

using wormhole::Direction;
using wormhole::kNumDirections;
using wormhole::Network;

}  // namespace

NetworkAuditor::NetworkAuditor(const NetworkAuditorConfig& config,
                               AuditLog& log)
    : config_(config), log_(log) {
  WS_CHECK(config.check_every >= 1);
}

void NetworkAuditor::on_cycle_end(Cycle now, const Network& network,
                                  const wormhole::CycleDelta& delta) {
  if (!initialized_) {
    nodes_ = network.topology().num_nodes();
    vcs_ = network.config().router.num_vcs;
    depth_ = network.config().router.buffer_depth;
    upn_ = kNumDirections * vcs_;
    const auto& rc = network.config().router;
    const bool finite = rc.buffer_model == wormhole::BufferModel::kFinite;
    credit_ledgers_ =
        finite && rc.flow_control == wormhole::FlowControl::kCredit;
    onoff_ = finite && rc.flow_control == wormhole::FlowControl::kOnOff;
    const std::size_t units =
        static_cast<std::size_t>(nodes_) * kNumDirections * vcs_;
    led_buffered_.assign(nodes_, 0);
    led_credits_.assign(units, 0);
    led_in_buf_.assign(units, 0);
    led_wire_flits_.assign(units, 0);
    led_wire_credits_.assign(units, 0);
    led_live_.assign(nodes_, 0);
    scratch_wire_flits_.assign(units, 0);
    scratch_wire_credits_.assign(units, 0);
    scratch_last_signal_.assign(units, 0);
    peer_key_.assign(units, SIZE_MAX);
    const auto& topo = network.topology();
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      for (std::uint32_t d = 1; d < kNumDirections; ++d) {  // kLocal: no wire
        const auto dir = static_cast<Direction>(d);
        const NodeId nbr = topo.neighbor(NodeId(n), dir);
        if (!nbr.is_valid()) continue;
        const Direction far = topo.peer_port(NodeId(n), dir);
        for (std::uint32_t cls = 0; cls < vcs_; ++cls)
          peer_key_[unit_key(NodeId(n), dir, cls)] = unit_key(nbr, far, cls);
      }
    }
    initialized_ = true;
    if (config_.mode == AuditMode::kIncremental) {
      // The first observed cycle's movements are already folded into the
      // post-cycle state we snapshot, so this cycle's delta is not
      // applied; the snapshot doubles as the initial oracle pass.
      snapshot(network);
      ++checks_;
      ++full_rescans_;
      full_scan(now, network);
      // Seed the cadence counters: the next verify is the first cycle
      // after this one divisible by check_every, and this pass consumed
      // one check from the rescan/mask schedules.
      next_check_ = (now / config_.check_every + 1) * config_.check_every;
      rescan_countdown_ =
          config_.full_rescan_every > 0 ? config_.full_rescan_every - 1 : 0;
      mask_countdown_ =
          config_.mask_check_every > 0 ? config_.mask_check_every - 1 : 0;
      return;
    }
  }

  if (config_.mode == AuditMode::kFull) {
    if (now % config_.check_every != 0) return;
    ++checks_;
    full_scan(now, network);
    return;
  }

  // Incremental: the ledgers must ingest every cycle's movements; only
  // the verification pass is sampled by check_every.
  const bool verify = now >= next_check_;
  if (verify) {
    next_check_ += config_.check_every;
    ++checks_;
  }
  if (!ingest(now, network, delta, verify)) {
    escalate(now, network);
    return;
  }
  if (verify && rescan_countdown_ > 0 && --rescan_countdown_ == 0) {
    rescan_countdown_ = config_.full_rescan_every;
    full_rescan_crosscheck(now, network);
  }
}

void NetworkAuditor::finish(Cycle now, const Network& network) {
  if (finished_) return;
  finished_ = true;
  if (!initialized_) {
    // Zero-cycle run: nothing ever ticked, but the fabric's constructed
    // state is still checkable.  Borrow the observer path to initialize
    // (it snapshots and full-scans in incremental mode).
    const wormhole::CycleDelta empty;
    on_cycle_end(now, network, empty);
    return;
  }
  ++checks_;
  if (config_.mode == AuditMode::kIncremental) {
    full_rescan_crosscheck(now, network);
  } else {
    full_scan(now, network);
  }
}

// --- Full-scan oracle --------------------------------------------------

void NetworkAuditor::full_scan(Cycle now, const Network& net) {
  check_flit_conservation(now, net);
  // The drift cross-check reads the wire bins this pass leaves behind,
  // so they are (re)built whichever protocol oracle runs — including
  // the infinite-buffer case where neither does.
  bin_wires(net);
  if (credit_ledgers_)
    check_credit_conservation(now, net);
  else if (onoff_)
    check_onoff_invariants(now, net);
  check_active_set(now, net);
  check_router_masks(now, net);
}

void NetworkAuditor::check_flit_conservation(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  Flits buffered = 0;
  for (std::uint32_t n = 0; n < nodes; ++n)
    buffered += net.router(NodeId(n)).buffered_flits();
  const Flits in_flight = static_cast<Flits>(net.flit_wire().size());
  const Flits accounted = net.nic_backlog_flits() + buffered + in_flight +
                          static_cast<Flits>(net.delivered_flits());
  if (accounted != net.injected_flits()) {
    std::ostringstream os;
    os << "cycle=" << now << " injected=" << net.injected_flits()
       << " != nic=" << net.nic_backlog_flits() << " + buffered=" << buffered
       << " + wire=" << in_flight << " + delivered=" << net.delivered_flits();
    log_.report("net.conservation.flits", os.str());
  }
}

void NetworkAuditor::bin_wires(const Network& net) {
  scratch_wire_flits_.assign(scratch_wire_flits_.size(), 0);
  scratch_wire_credits_.assign(scratch_wire_credits_.size(), 0);
  scratch_last_signal_.assign(scratch_last_signal_.size(), 0);
  const auto& fw = net.flit_wire();
  for (std::size_t i = 0; i < fw.size(); ++i) {
    const Network::WireFlit& wf = fw[i];
    ++scratch_wire_flits_[unit_key(wf.to, wf.in, wf.cls)];
  }
  // Ascending FIFO order: for each bin the last signal written is the
  // newest in flight, which is what the handshake-sync check needs.
  const auto& cw = net.credit_wire();
  for (std::size_t i = 0; i < cw.size(); ++i) {
    const Network::WireCredit& wc = cw[i];
    const std::size_t k = unit_key(wc.to, wc.out, wc.cls);
    ++scratch_wire_credits_[k];
    if (wc.kind != Network::WireCredit::Kind::kCredit)
      scratch_last_signal_[k] = static_cast<std::uint8_t>(wc.kind);
  }
  const auto& cq = net.credit_quarantine();
  for (std::size_t i = 0; i < cq.size(); ++i) {
    const Network::WireCredit& wc = cq[i];
    ++scratch_wire_credits_[unit_key(wc.to, wc.out, wc.cls)];
  }
}

void NetworkAuditor::check_credit_conservation(Cycle now,
                                               const Network& net) {
  const auto& topo = net.topology();

  // The caller (full_scan) just binned both wires by (destination, port,
  // class): a flit heading to (to, in, cls) came from exactly one
  // upstream output, and a credit heading to (to, out, cls) replenishes
  // exactly one output VC.
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const NodeId node(n);
    const auto& router = net.router(node);
    for (std::uint32_t d = 1; d < kNumDirections; ++d) {  // skip kLocal sink
      const auto out = static_cast<Direction>(d);
      const NodeId neighbor = topo.neighbor(node, out);
      if (!neighbor.is_valid()) continue;  // edge/unwired: port unused
      const Direction far_in = topo.peer_port(node, out);
      for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
        const std::uint32_t total =
            router.output_credits(out, cls) +
            scratch_wire_flits_[unit_key(neighbor, far_in, cls)] +
            static_cast<std::uint32_t>(
                net.router(neighbor).input_buffer_size(far_in, cls)) +
            scratch_wire_credits_[unit_key(node, out, cls)];
        if (total != depth_) {
          std::ostringstream os;
          os << "cycle=" << now << " router=" << n << " out=" << d
             << " cls=" << cls << ": credits="
             << router.output_credits(out, cls) << " + wire_flits="
             << scratch_wire_flits_[unit_key(neighbor, far_in, cls)]
             << " + downstream_buf="
             << net.router(neighbor).input_buffer_size(far_in, cls)
             << " + wire_credits="
             << scratch_wire_credits_[unit_key(node, out, cls)]
             << " != depth=" << depth_;
          log_.report("net.conservation.credits", os.str());
        }
      }
    }
  }
}

void NetworkAuditor::check_onoff_invariants(Cycle now, const Network& net) {
  const auto& topo = net.topology();
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const NodeId node(n);
    const auto& router = net.router(node);
    check_one_router_occupancy(now, net, n);
    for (std::uint32_t d = 1; d < kNumDirections; ++d) {  // skip kLocal sink
      const auto out = static_cast<Direction>(d);
      const NodeId neighbor = topo.neighbor(node, out);
      if (!neighbor.is_valid()) continue;  // edge/unwired: port unused
      const Direction far_in = topo.peer_port(node, out);
      const auto& down = net.router(neighbor);
      for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
        // Handshake sync: with no signal in flight the sender's off_sent
        // and the receiver's peer_on are complements; with signals in
        // flight the newest one must match the sender's current state
        // (signals are conserved and FIFO, so anything else means one
        // was dropped, duplicated, or reordered).
        const bool off_sent = down.off_sent(far_in, cls);
        const bool peer_on = router.peer_on(out, cls);
        const std::uint8_t last = scratch_last_signal_[unit_key(node, out,
                                                                cls)];
        const bool in_sync =
            last == 0
                ? peer_on == !off_sent
                : off_sent ==
                      (last == static_cast<std::uint8_t>(
                                   Network::WireCredit::Kind::kOff));
        if (!in_sync) {
          std::ostringstream os;
          os << "cycle=" << now << " router=" << n << " out=" << d
             << " cls=" << cls << ": peer_on=" << peer_on
             << " downstream off_sent=" << off_sent << " in-flight signal="
             << (last == 0 ? "none" : last == 1 ? "off" : "on");
          log_.report("net.onoff.signal_sync", os.str());
        }
      }
    }
  }
}

void NetworkAuditor::check_one_router_occupancy(Cycle now, const Network& net,
                                                std::uint32_t n) {
  const auto& router = net.router(NodeId(n));
  for (std::uint32_t d = 0; d < kNumDirections; ++d) {
    const auto dir = static_cast<Direction>(d);
    for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
      const std::size_t occ = router.input_buffer_size(dir, cls);
      if (occ > depth_) {
        std::ostringstream os;
        os << "cycle=" << now << " router=" << n << " in=" << d
           << " cls=" << cls << ": occupancy=" << occ
           << " exceeds buffer_depth=" << depth_
           << " (the off watermark failed to stop the upstream)";
        log_.report("net.onoff.overflow", os.str());
      }
    }
  }
}

void NetworkAuditor::check_active_set(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  std::uint32_t live = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeId node(n);
    if (net.router_live(node)) ++live;
    if (!net.router(node).drained() && !net.router_live(node)) {
      std::ostringstream os;
      os << "cycle=" << now << " router=" << n
         << " holds work but is not in the active set";
      log_.report("net.active_set.lost", os.str());
    }
  }
  if (live != net.live_router_count()) {
    std::ostringstream os;
    os << "cycle=" << now << " live flags=" << live
       << " but counter=" << net.live_router_count();
    log_.report("net.active_set.count", os.str());
  }
}

void NetworkAuditor::check_one_router_masks(Cycle now, const Network& net,
                                            std::uint32_t n) {
  const auto& router = net.router(NodeId(n));
  std::uint64_t routable = 0;
  std::uint64_t requesting = 0;
  std::uint64_t bound = 0;
  for (std::uint32_t d = 0; d < kNumDirections; ++d) {
    const auto dir = static_cast<Direction>(d);
    for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
      const std::uint64_t unit_bit = std::uint64_t{1}
                                     << router.unit(dir, cls);
      if (!router.input_routed(dir, cls) &&
          router.input_buffer_size(dir, cls) > 0) {
        routable |= unit_bit;
      }
      if (router.arbiter(dir, cls).pending_total() > 0)
        requesting |= unit_bit;
      if (router.output_bound(dir, cls)) bound |= unit_bit;
    }
  }
  const auto report = [&](const char* which, std::uint64_t expected,
                          std::uint64_t actual) {
    if (expected == actual) return;
    std::ostringstream os;
    os << "cycle=" << now << " router=" << n << " " << which
       << " mask=" << std::hex << actual << " but flags imply "
       << expected;
    log_.report("net.masks.stale", os.str());
  };
  report("routable_inputs", routable, router.routable_inputs_mask());
  report("requesting_outputs", requesting, router.requesting_outputs_mask());
  report("bound_outputs", bound, router.bound_outputs_mask());
}

void NetworkAuditor::check_router_masks(Cycle now, const Network& net) {
  const std::uint32_t nodes = net.topology().num_nodes();
  for (std::uint32_t n = 0; n < nodes; ++n)
    check_one_router_masks(now, net, n);
}

// --- Incremental ledgers -----------------------------------------------

void NetworkAuditor::snapshot(const Network& net) {
  led_injected_ = net.injected_flits();
  led_nic_ = net.nic_backlog_flits();
  led_delivered_ = net.delivered_flits();
  led_wire_flits_total_ = static_cast<std::int64_t>(net.flit_wire().size());
  led_buffered_total_ = 0;
  led_live_count_ = 0;
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const NodeId node(n);
    const auto& router = net.router(node);
    led_buffered_[n] = static_cast<std::int32_t>(router.buffered_flits());
    led_buffered_total_ += static_cast<Flits>(led_buffered_[n]);
    const bool live = net.router_live(node);
    led_live_[n] = live ? 1 : 0;
    if (live) ++led_live_count_;
    for (std::uint32_t d = 0; d < kNumDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
        const std::size_t k = unit_key(node, dir, cls);
        led_credits_[k] =
            static_cast<std::int32_t>(router.output_credits(dir, cls));
        led_in_buf_[k] =
            static_cast<std::int32_t>(router.input_buffer_size(dir, cls));
      }
    }
  }
  bin_wires(net);
  for (std::size_t k = 0; k < led_wire_flits_.size(); ++k) {
    led_wire_flits_[k] = static_cast<std::int32_t>(scratch_wire_flits_[k]);
    led_wire_credits_[k] =
        static_cast<std::int32_t>(scratch_wire_credits_[k]);
  }
}

bool NetworkAuditor::ingest(Cycle now, const Network& net,
                            const wormhole::CycleDelta& delta, bool verify) {
  // Every event site enrolls its router in the touched set, so an empty
  // touched set with no NIC enqueues means the whole cycle was a no-op:
  // no ledger changed, no fabric counter changed, and the previous
  // verify's verdict still holds.
  if (delta.touched.empty() && delta.enqueued_flits == 0) return true;

  // --- Ledger updates (every cycle) ---------------------------------
  led_injected_ += delta.enqueued_flits;
  led_nic_ += delta.enqueued_flits;
  for (const std::uint32_t n : delta.injections) {
    --led_nic_;
    ++led_buffered_[n];
    ++led_buffered_total_;
  }
  for (const auto& e : delta.flits_from_wire) {
    --led_wire_flits_[e.unit];
    --led_wire_flits_total_;
    ++led_in_buf_[e.unit];
    ++led_buffered_[e.node];
    ++led_buffered_total_;
  }
  // Outside credit flow control the per-unit credit/input ledgers are
  // unmaintainable from the delta (on/off signal events carry no buffer
  // pop; infinite buffers emit no credit events at all), so only the
  // wire-occupancy ledgers ingest credit-stream events — which is still
  // enough to prove signal flits are conserved end to end.
  for (const auto& e : delta.flits_to_wire) {
    if (credit_ledgers_) --led_credits_[e.unit];
    ++led_wire_flits_[peer_key_[e.unit]];
    ++led_wire_flits_total_;
    --led_buffered_[e.node];
    --led_buffered_total_;
  }
  for (const std::uint32_t n : delta.ejections) {
    --led_buffered_[n];
    --led_buffered_total_;
    ++led_delivered_;
  }
  for (const auto& e : delta.credits_to_wire) {
    if (credit_ledgers_) --led_in_buf_[e.unit];
    ++led_wire_credits_[peer_key_[e.unit]];
  }
  for (const auto& e : delta.credits_from_wire) {
    --led_wire_credits_[e.unit];
    if (credit_ledgers_) ++led_credits_[e.unit];
  }

  bool ok = true;
  const auto mismatch = [&](const char* check, const char* what,
                            std::int64_t ledger, std::int64_t actual,
                            std::uint32_t router, int port, int cls) {
    std::ostringstream os;
    os << "cycle=" << now << " " << what << " ledger=" << ledger
       << " != fabric=" << actual;
    if (router != UINT32_MAX) os << " router=" << router;
    if (port >= 0) os << " port=" << port;
    if (cls >= 0) os << " cls=" << cls;
    log_.report(check, os.str());
    ok = false;
  };

  // Touched routers: fold liveness flips into the active-set shadow
  // (every cycle — the network guarantees every flip is in the touched
  // set), and on verify cycles compare the per-router ledgers too.
  bool check_masks = false;
  if (verify && mask_countdown_ > 0 && --mask_countdown_ == 0) {
    mask_countdown_ = config_.mask_check_every;
    check_masks = true;
  }
  for (const std::uint32_t n : delta.touched) {
    const NodeId node(n);
    const bool live = net.router_live(node);
    if (live != (led_live_[n] != 0)) {
      led_live_[n] = live ? 1 : 0;
      live ? ++led_live_count_ : --led_live_count_;
    }
    if (!verify) continue;
    const auto& router = net.router(node);
    if (led_buffered_[n] != static_cast<Flits>(router.buffered_flits()))
      mismatch("net.ledger.buffered", "buffered_flits", led_buffered_[n],
               router.buffered_flits(), n, -1, -1);
    if (!router.drained() && !live) {
      std::ostringstream os;
      os << "cycle=" << now << " router=" << n
         << " holds work but is not in the active set";
      log_.report("net.active_set.lost", os.str());
    }
    if (check_masks) {
      check_one_router_masks(now, net, n);
      if (onoff_) check_one_router_occupancy(now, net, n);
    }
  }
  if (!verify) return true;

  // Globals: O(1) compares against the fabric's own counters.
  if (led_injected_ != net.injected_flits())
    mismatch("net.ledger.injected", "injected_flits", led_injected_,
             net.injected_flits(), UINT32_MAX, -1, -1);
  if (led_nic_ != net.nic_backlog_flits())
    mismatch("net.ledger.nic", "nic_backlog_flits", led_nic_,
             net.nic_backlog_flits(), UINT32_MAX, -1, -1);
  if (led_delivered_ != net.delivered_flits())
    mismatch("net.ledger.delivered", "delivered_flits",
             static_cast<std::int64_t>(led_delivered_),
             static_cast<std::int64_t>(net.delivered_flits()), UINT32_MAX,
             -1, -1);
  if (led_wire_flits_total_ !=
      static_cast<std::int64_t>(net.flit_wire().size()))
    mismatch("net.ledger.wire", "flit_wire size", led_wire_flits_total_,
             static_cast<std::int64_t>(net.flit_wire().size()), UINT32_MAX,
             -1, -1);
  // Ledger-side conservation identity: the event stream itself must not
  // create or destroy flits.  Holds by construction of apply_delta unless
  // the network under-reported a movement.
  if (led_injected_ != led_nic_ + led_buffered_total_ +
                           static_cast<Flits>(led_wire_flits_total_) +
                           static_cast<Flits>(led_delivered_))
    mismatch("net.ledger.flit_conservation", "injected vs parts",
             led_injected_,
             led_nic_ + led_buffered_total_ +
                 static_cast<Flits>(led_wire_flits_total_) +
                 static_cast<Flits>(led_delivered_),
             UINT32_MAX, -1, -1);

  if (led_live_count_ != net.live_router_count()) {
    std::ostringstream os;
    os << "cycle=" << now << " live flags=" << led_live_count_
       << " but counter=" << net.live_router_count();
    log_.report("net.active_set.count", os.str());
  }

  // Units this cycle's sends moved: the credit ledger vs the fabric's
  // counter (credits gate sending, so every send re-checks the unit that
  // just consumed one), plus the credit conservation sum over the four
  // ledger terms (each event preserves the sum, so a wrong sum means the
  // fabric leaked a credit or flit).  Per-unit input-buffer compares are
  // deliberately absent from this fast path: a fabric input-buffer
  // corruption shifts the same router's buffered aggregate, which the
  // touched-router loop above compares every verify; a compensating
  // intra-router split falls to the periodic full-rescan cross-check.
  if (credit_ledgers_) {
    for (const auto& e : delta.flits_to_wire) {
      const std::uint32_t local = e.unit - e.node * upn_;
      const std::int64_t actual = static_cast<std::int64_t>(
          net.router(NodeId(e.node)).output_credits_by_unit(local));
      if (led_credits_[e.unit] != actual)
        mismatch("net.ledger.credits", "output_credits", led_credits_[e.unit],
                 actual, e.node, static_cast<int>(local / vcs_),
                 static_cast<int>(local % vcs_));
      const std::size_t kd = peer_key_[e.unit];
      const std::int64_t sum = led_credits_[e.unit] + led_wire_flits_[kd] +
                               led_in_buf_[kd] + led_wire_credits_[e.unit];
      if (sum != static_cast<std::int64_t>(depth_))
        mismatch("net.ledger.credit_sum", "credit sum", sum, depth_, e.node,
                 static_cast<int>(local / vcs_),
                 static_cast<int>(local % vcs_));
    }
  }
  return ok;
}

void NetworkAuditor::full_rescan_crosscheck(Cycle now, const Network& net) {
  ++full_rescans_;
  full_scan(now, net);  // leaves the wire bins in the scratch arrays

  bool drift = false;
  const auto report_drift = [&](const std::string& what) {
    log_.report("net.ledger.drift", "cycle=" + std::to_string(now) + " " +
                                        what);
    drift = true;
  };
  if (led_injected_ != net.injected_flits()) report_drift("injected");
  if (led_nic_ != net.nic_backlog_flits()) report_drift("nic_backlog");
  if (led_delivered_ != net.delivered_flits()) report_drift("delivered");
  if (led_wire_flits_total_ !=
      static_cast<std::int64_t>(net.flit_wire().size()))
    report_drift("wire_flits_total");
  Flits buffered_total = 0;
  std::uint32_t live_count = 0;
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const NodeId node(n);
    const auto& router = net.router(node);
    buffered_total += router.buffered_flits();
    if (net.router_live(node)) ++live_count;
    if (led_buffered_[n] != static_cast<Flits>(router.buffered_flits()))
      report_drift("buffered router=" + std::to_string(n));
    if ((led_live_[n] != 0) != net.router_live(node))
      report_drift("live router=" + std::to_string(n));
    // Local units carry no credit protocol (and local pops emit no
    // events), so only non-local units have exact per-unit ledgers.
    for (std::uint32_t d = 1; d < kNumDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      for (std::uint32_t cls = 0; cls < vcs_; ++cls) {
        const std::size_t k = unit_key(node, dir, cls);
        if (credit_ledgers_ &&
            led_credits_[k] !=
                static_cast<std::int64_t>(router.output_credits(dir, cls)))
          report_drift("credits router=" + std::to_string(n) +
                       " port=" + std::to_string(d) +
                       " cls=" + std::to_string(cls));
        if (credit_ledgers_ &&
            led_in_buf_[k] != static_cast<std::int64_t>(
                                  router.input_buffer_size(dir, cls)))
          report_drift("in_buf router=" + std::to_string(n) +
                       " port=" + std::to_string(d) +
                       " cls=" + std::to_string(cls));
        if (led_wire_flits_[k] !=
            static_cast<std::int64_t>(scratch_wire_flits_[k]))
          report_drift("wire_flits router=" + std::to_string(n) +
                       " port=" + std::to_string(d) +
                       " cls=" + std::to_string(cls));
        if (led_wire_credits_[k] !=
            static_cast<std::int64_t>(scratch_wire_credits_[k]))
          report_drift("wire_credits router=" + std::to_string(n) +
                       " port=" + std::to_string(d) +
                       " cls=" + std::to_string(cls));
      }
    }
  }
  if (led_buffered_total_ != buffered_total)
    report_drift("buffered_total");
  if (led_live_count_ != live_count) report_drift("live_count");
  if (drift) snapshot(net);  // resync so one fault does not cascade
}

void NetworkAuditor::escalate(Cycle now, const Network& net) {
  ++full_rescans_;
  full_scan(now, net);
  snapshot(net);
}

}  // namespace wormsched::validate
