#include "validate/violation.hpp"

#include <cstdio>
#include <cstdlib>

namespace wormsched::validate {

void AuditLog::report(std::string check, std::string detail) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (on_report_) on_report_(Violation{check, detail});
#ifndef NDEBUG
  if (mode_ == Mode::kDefault) {
    std::fprintf(stderr, "AUDIT VIOLATION [%s]: %s\n", check.c_str(),
                 detail.c_str());
    std::fflush(stderr);
    std::abort();
  }
#endif
  ++total_;
  if (kept_.size() < kKeepLimit)
    kept_.push_back(Violation{std::move(check), std::move(detail)});
}

}  // namespace wormsched::validate
