#include "validate/err_auditor.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace wormsched::validate {

namespace {

/// Full record context for violation reports — everything needed to
/// reproduce and localize a broken bound.
[[nodiscard]] std::string context(const core::ErrOpportunity& rec) {
  std::ostringstream os;
  os << "round=" << rec.round << " flow=" << rec.flow.value()
     << " w=" << rec.weight << " A=" << rec.allowance << " sent=" << rec.sent
     << " sc=" << rec.surplus_count << " max_sc=" << rec.max_sc_so_far
     << " prev_max=" << rec.previous_max_sc
     << " max_charge=" << rec.max_charge
     << " active_after=" << rec.active_after
     << (rec.deactivated ? " deactivated" : "");
  return os.str();
}

[[nodiscard]] std::string with(const core::ErrOpportunity& rec,
                               const std::string& extra) {
  return extra + " | " + context(rec);
}

}  // namespace

ErrAuditor::ErrAuditor(std::size_t num_flows, const ErrAuditorConfig& config,
                       AuditLog& log)
    : config_(config), log_(log), flows_(num_flows) {
  WS_CHECK(num_flows > 0);
  WS_CHECK(config.fm_bound_factor > 0.0);
}

void ErrAuditor::attach(core::ErrPolicy& policy) {
  policy.set_opportunity_listener(
      [this](const core::ErrOpportunity& rec) { on_opportunity(rec); });
}

void ErrAuditor::on_opportunity(const core::ErrOpportunity& rec) {
  ++seen_;
  const auto f = static_cast<std::uint32_t>(rec.flow.value());
  if (f >= flows_.size()) {
    std::ostringstream os;
    os << "flow id " << f << " out of range (num_flows=" << flows_.size()
       << ")";
    log_.report("err.record.flow", with(rec, os.str()));
    return;
  }
  FlowTrack& track = flows_[f];

  // m (Def. 2) grows with every served charge, including this one.
  if (rec.max_charge > m_) m_ = rec.max_charge;

  // Reconstruct the policy's inputs from the record: the allowance
  // equation inverted gives the SC the policy used.
  const double sc_before =
      rec.weight * (1.0 + rec.previous_max_sc) - rec.allowance;
  const double sc_pre_reset = rec.sent - rec.allowance;

  // Mid-flight adoption of m: an auditor attached after the run started
  // (a late attach, or a checkpoint restore — run-local wiring is rebuilt
  // fresh) never saw the charges that produced the surplus state it
  // inherits.  Lemma 1 bounds every SC by m, so the surplus a flow walks
  // in with and the previous round's MaxSC are evidence of an earlier
  // charge at least that large; fold them in before bounding against m_,
  // or Theorem 2/3 misfire on pre-attach history.  Only state that
  // predates this record's own service qualifies — its own overshoot
  // stays checked by err.lemma1.upper and the m-relative bounds below.
  // Attached-from-the-start this is a no-op: m_ already dominates every
  // surplus the stream has emitted.
  if (sc_before > m_) m_ = sc_before;
  if (rec.previous_max_sc > m_) m_ = rec.previous_max_sc;

  check_round_bookkeeping(rec, sc_pre_reset);
  check_lemma1(rec, sc_before, sc_pre_reset);

  // A flow active across consecutive rounds is served exactly once per
  // round; a round gap means it left and re-entered the active list.
  const bool continues =
      track.streak_live && rec.round == track.last_round + 1;
  if (!continues) {
    drop_pairs_of(f);  // backlog continuity broke before this visit
    track.streak_len = 0;
    track.streak_sent = 0.0;
    track.streak_prev_max = 0.0;
    track.sc_before_first = sc_before;
  }
  track.streak_live = true;
  track.last_round = rec.round;
  ++track.streak_len;
  track.streak_sent += rec.sent;
  track.streak_prev_max += rec.previous_max_sc;

  check_theorem2(rec, track, sc_pre_reset);
  if (flows_.size() <= config_.fm_pair_limit) check_theorem3(rec, track);

  // Post-record state the next visit is checked against.
  track.sc_known = true;
  track.sc = rec.surplus_count;  // post-reset (0 when deactivated)
  if (rec.deactivated) {
    drop_pairs_of(f);
    track.streak_live = false;
  }
  idle_reset_pending_ = rec.active_after == 0;
  if (sc_pre_reset > max_sc_seen_) max_sc_seen_ = sc_pre_reset;
}

void ErrAuditor::check_round_bookkeeping(const core::ErrOpportunity& rec,
                                         double sc_pre_reset) {
  const double eps = config_.epsilon;
  if (cur_round_ == 0) {
    // First record: adopt the stream mid-flight (the auditor may attach
    // after the run started); replay becomes exact from the next round.
    first_seen_round_ = rec.round;
    cur_round_ = rec.round;
    round_prev_snapshot_ = rec.previous_max_sc;
    round_max_sc_ = rec.max_sc_so_far;  // earlier folds of this round
  } else if (rec.round != cur_round_) {
    if (rec.round != cur_round_ + 1) {
      std::ostringstream os;
      os << "round jumped from " << cur_round_;
      log_.report("err.round.skip", with(rec, os.str()));
    }
    const bool idle_reset = config_.reset_on_idle && idle_reset_pending_;
    const double expected_prev = idle_reset ? 0.0 : round_max_sc_;
    if (std::abs(rec.previous_max_sc - expected_prev) > eps) {
      std::ostringstream os;
      os << "MaxSC snapshot expected " << expected_prev;
      log_.report("err.maxsc.snapshot", with(rec, os.str()));
    }
    cur_round_ = rec.round;
    round_prev_snapshot_ = rec.previous_max_sc;
    round_max_sc_ = 0.0;
  } else if (std::abs(rec.previous_max_sc - round_prev_snapshot_) > eps) {
    std::ostringstream os;
    os << "PreviousMaxSC drifted within round (was " << round_prev_snapshot_
       << ")";
    log_.report("err.maxsc.snapshot-drift", with(rec, os.str()));
  }

  // Replay the fold: MaxSC is the running max over the round's pre-reset
  // surplus counts, from 0.
  if (sc_pre_reset > round_max_sc_) round_max_sc_ = sc_pre_reset;
  const bool partial_round = rec.round == first_seen_round_;
  const double fold_gap = rec.max_sc_so_far - round_max_sc_;
  if (std::abs(fold_gap) > eps && !(partial_round && fold_gap > 0.0)) {
    std::ostringstream os;
    os << "MaxSC fold replay expected " << round_max_sc_;
    log_.report("err.maxsc.fold", with(rec, os.str()));
  }
}

void ErrAuditor::check_lemma1(const core::ErrOpportunity& rec,
                              double sc_before, double sc_pre_reset) {
  const double eps = config_.epsilon;
  const auto f = static_cast<std::uint32_t>(rec.flow.value());
  const FlowTrack& track = flows_[f];

  // Lemma 1 lower half: surplus counts never go negative...
  if (sc_before < -eps)
    log_.report("err.lemma1.lower", with(rec, "SC(r-1) negative"));
  // ...and a flow's SC never exceeds the previous round's MaxSC, which is
  // what keeps every allowance at least w_i (> 0, Lemma 1's statement).
  if (sc_before > rec.previous_max_sc + eps)
    log_.report("err.lemma1.sc-vs-maxsc",
                with(rec, "SC(r-1) above MaxSC(r-1)"));
  if (rec.allowance <= 0.0)
    log_.report("err.lemma1.allowance-positive",
                with(rec, "allowance not positive"));
  if (rec.allowance < rec.weight - eps)
    log_.report("err.lemma1.allowance-floor",
                with(rec, "allowance below the flow's weight"));

  // Cross-check the policy's SC arithmetic against the auditor's own
  // tracked value from this flow's previous visit.
  if (track.sc_known && std::abs(sc_before - track.sc) > eps) {
    std::ostringstream os;
    os << "allowance implies SC(r-1)=" << sc_before << " but auditor tracked "
       << track.sc;
    log_.report("err.allowance.mismatch", with(rec, os.str()));
  }

  if (rec.deactivated) {
    if (rec.surplus_count != 0.0)
      log_.report("err.record.reset",
                  with(rec, "deactivated flow's SC not reset to 0"));
  } else {
    // Service only stops once Sent >= Allowance (Fig. 1's do/while).
    if (sc_pre_reset < -eps)
      log_.report("err.lemma1.residual",
                  with(rec, "opportunity ended early with Sent < A"));
    if (std::abs(rec.surplus_count - sc_pre_reset) > eps)
      log_.report("err.record.sc",
                  with(rec, "recorded SC != Sent - A"));
  }

  // Lemma 1 / Corollary 1 upper half, weighted-general form: the
  // overshoot is always smaller than the final charge that caused it,
  // hence SC_i < m.  (Unit-flit packets: SC_i <= m - 1.)
  if (sc_pre_reset > 0.0 && rec.max_charge > 0.0 &&
      sc_pre_reset >= rec.max_charge + eps) {
    std::ostringstream os;
    os << "overshoot " << sc_pre_reset << " >= largest charge "
       << rec.max_charge;
    log_.report("err.lemma1.upper", with(rec, os.str()));
  }
}

void ErrAuditor::check_theorem2(const core::ErrOpportunity& rec,
                                FlowTrack& track, double sc_pre_reset) {
  const double n = static_cast<double>(track.streak_len);
  const double eps = config_.epsilon * (n + 1.0);
  const double base = rec.weight * (n + track.streak_prev_max);

  // Exact telescoped identity over the active streak:
  //   sum Sent = w(n + sum MaxSC(r-1)) + SC(end, pre-reset) - SC(start-1).
  const double expect = base + sc_pre_reset - track.sc_before_first;
  if (std::abs(track.streak_sent - expect) > eps) {
    std::ostringstream os;
    os << "window of " << track.streak_len << " rounds served "
       << track.streak_sent << ", telescoping says " << expect;
    log_.report("err.theorem2.telescope", with(rec, os.str()));
  }

  // The paper's Theorem 2 bound: both SC terms lie in [0, m), so the
  // window's service deviates from w(n + sum MaxSC) by less than m.  That
  // holds only while the flow stays backlogged: a deactivating end quits
  // at queue-empty with Sent < A, undershooting by up to the whole
  // allowance (and the streak resets right after), so skip the bound
  // there — the telescoped identity above still pins the arithmetic.
  const double dev = track.streak_sent - base;
  if (!rec.deactivated && m_ > 0.0 && (dev >= m_ + eps || dev <= -(m_ + eps))) {
    std::ostringstream os;
    os << "window of " << track.streak_len << " rounds deviates by " << dev
       << " (bound m=" << m_ << ")";
    log_.report("err.theorem2.bound", with(rec, os.str()));
  }
}

void ErrAuditor::check_theorem3(const core::ErrOpportunity& rec,
                                FlowTrack& track) {
  track.ncum += rec.sent / rec.weight;
  const auto f = static_cast<std::uint32_t>(rec.flow.value());
  for (std::uint32_t g = 0; g < flows_.size(); ++g) {
    if (g == f || !flows_[g].streak_live) continue;
    const std::uint32_t lo = f < g ? f : g;
    const std::uint32_t hi = f < g ? g : f;
    const double delta = flows_[lo].ncum - flows_[hi].ncum;
    auto [it, inserted] = pairs_.try_emplace(pair_key(f, g));
    PairTrack& pair = it->second;
    if (inserted) {
      // The pair window opens now: both flows are backlogged from this
      // instant (conservative — never wider than the paper's interval).
      pair.base = delta;
      pair.dmin = 0.0;
      pair.dmax = 0.0;
      continue;
    }
    const double d = delta - pair.base;
    if (d < pair.dmin) pair.dmin = d;
    if (d > pair.dmax) pair.dmax = d;
    const double fm = pair.dmax - pair.dmin;
    if (fm > max_fm_) max_fm_ = fm;
    if (m_ > 0.0 && fm >= config_.fm_bound_factor * m_ + config_.epsilon) {
      std::ostringstream os;
      os << "FM(" << lo << "," << hi << ")=" << fm << " >= "
         << config_.fm_bound_factor << "*m (m=" << m_ << ")";
      log_.report("err.theorem3.fm", with(rec, os.str()));
    }
  }
}

void ErrAuditor::drop_pairs_of(std::uint32_t flow) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    const auto a = static_cast<std::uint32_t>(it->first >> 32);
    const auto b = static_cast<std::uint32_t>(it->first & 0xffffffffu);
    it = (a == flow || b == flow) ? pairs_.erase(it) : ++it;
  }
}

}  // namespace wormsched::validate
