#include "validate/faults.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace wormsched::validate {

namespace {

/// splitmix64 finalizer: the avalanche mix behind Rng's seeding, reused
/// here so fault decisions are well-distributed pure hashes.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t hash3(std::uint64_t seed, std::uint64_t kind,
                                  std::uint64_t epoch, std::uint64_t node) {
  return mix(mix(mix(seed ^ kind) ^ epoch) ^ node);
}

[[nodiscard]] double to_u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultSpec FaultSpec::chaos(std::uint64_t seed) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = seed;
  spec.link_stall_rate = 0.10;
  spec.credit_stall_rate = 0.05;
  spec.churn_rate = 0.10;
  spec.burst_rate = 0.05;
  return spec;
}

std::string FaultSpec::describe() const {
  if (!enabled) return "faults=off";
  std::ostringstream os;
  os << "faults(seed=" << seed << " window=" << window << " link="
     << link_stall_rate << "x" << link_stall_cycles << " credit="
     << credit_stall_rate << "x" << credit_stall_cycles << " churn="
     << churn_rate << " burst=" << burst_rate << "x" << burst_multiplier
     << ")";
  return os.str();
}

ScheduledFaults::ScheduledFaults(const FaultSpec& spec) : spec_(spec) {
  WS_CHECK_MSG(spec_.window >= 1, "fault window must be >= 1 cycle");
  // Stall windows are clipped to the epoch so release cycles stay
  // monotone across epochs (the FaultModel FIFO contract).
  if (spec_.link_stall_cycles > spec_.window)
    spec_.link_stall_cycles = spec_.window;
  if (spec_.credit_stall_cycles > spec_.window)
    spec_.credit_stall_cycles = spec_.window;
  WS_CHECK(spec_.burst_multiplier >= 0.0);
}

double ScheduledFaults::u01(Kind kind, std::uint64_t epoch,
                            std::uint64_t node) const {
  return to_u01(hash3(spec_.seed, kind, epoch, node));
}

bool ScheduledFaults::link_stalled(Cycle now) const {
  if (!spec_.enabled || spec_.link_stall_rate <= 0.0) return false;
  const std::uint64_t epoch = now / spec_.window;
  if (u01(kLink, epoch, 0) >= spec_.link_stall_rate) return false;
  return now % spec_.window < spec_.link_stall_cycles;
}

Cycle ScheduledFaults::credit_hold_cycles(Cycle now, NodeId node) const {
  if (!spec_.enabled || spec_.credit_stall_rate <= 0.0) return 0;
  const std::uint64_t epoch = now / spec_.window;
  if (u01(kCredit, epoch, node.value()) >= spec_.credit_stall_rate) return 0;
  // Credits arriving in the stall window [epoch_start, epoch_start + L)
  // are all released at epoch_start + L: one release point per (epoch,
  // node) keeps the quarantine FIFO ordered.
  const Cycle offset = now % spec_.window;
  if (offset >= spec_.credit_stall_cycles) return 0;
  return spec_.credit_stall_cycles - offset;
}

double ScheduledFaults::injection_multiplier(Cycle now, NodeId node) const {
  if (!spec_.enabled) return 1.0;
  const std::uint64_t epoch = now / spec_.window;
  if (spec_.churn_rate > 0.0 &&
      u01(kChurn, epoch, node.value()) < spec_.churn_rate)
    return 0.0;
  if (spec_.burst_rate > 0.0 &&
      u01(kBurst, epoch, node.value()) < spec_.burst_rate)
    return spec_.burst_multiplier;
  return 1.0;
}

std::optional<NodeId> ScheduledFaults::burst_destination(Cycle now,
                                                         NodeId src) const {
  if (!spec_.enabled || spec_.burst_rate <= 0.0 || spec_.num_nodes == 0)
    return std::nullopt;
  const std::uint64_t epoch = now / spec_.window;
  if (u01(kBurst, epoch, src.value()) >= spec_.burst_rate)
    return std::nullopt;
  // One hotspot per epoch, shared by every bursting source — that is
  // what concentrates load and stresses the downstream arbiters.
  const std::uint64_t h = hash3(spec_.seed, kBurstDest, epoch, 0);
  return NodeId(static_cast<std::uint32_t>(h % spec_.num_nodes));
}

traffic::Trace apply_trace_faults(const FaultSpec& spec,
                                  const traffic::Trace& trace) {
  if (!spec.enabled) return trace;
  WS_CHECK(spec.window >= 1);
  traffic::Trace out;
  out.num_flows = trace.num_flows;
  out.entries.reserve(trace.entries.size());
  for (const traffic::TraceEntry& e : trace.entries) {
    const std::uint64_t epoch = e.cycle / spec.window;
    const std::uint64_t flow = e.flow.value();
    if (spec.churn_rate > 0.0 &&
        to_u01(hash3(spec.seed, 3 /*kChurn*/, epoch, flow)) < spec.churn_rate)
      continue;  // dropped: the flow churned off for this epoch
    traffic::TraceEntry jittered = e;
    if (spec.trace_jitter_max > 0) {
      const std::uint64_t h = hash3(spec.seed, 6 /*jitter*/, e.cycle, flow);
      jittered.cycle += h % (spec.trace_jitter_max + 1);
    }
    out.entries.push_back(jittered);
    if (spec.burst_rate > 0.0 &&
        to_u01(hash3(spec.seed, 4 /*kBurst*/, epoch, flow)) < spec.burst_rate)
      out.entries.push_back(jittered);  // duplicated: correlated burst
  }
  // Jitter can reorder; replay requires non-decreasing cycles.  Stable
  // sort keeps same-cycle arrival order deterministic.
  std::stable_sort(out.entries.begin(), out.entries.end(),
                   [](const traffic::TraceEntry& a,
                      const traffic::TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
  return out;
}

void add_fault_options(CliParser& cli) {
  cli.add_flag("faults", "enable deterministic fault injection");
  cli.add_option("fault-seed", "fault schedule seed", "1");
  cli.add_option("fault-window", "fault epoch length in cycles", "64");
  cli.add_option("fault-link-rate", "P(epoch has a fabric link stall)",
                 "0.1");
  cli.add_option("fault-link-cycles", "link stall length in cycles", "4");
  cli.add_option("fault-credit-rate",
                 "P(node's credit returns starve per epoch)", "0.05");
  cli.add_option("fault-credit-cycles", "credit starvation window", "16");
  cli.add_option("fault-churn-rate", "P(source muted per epoch)", "0.1");
  cli.add_option("fault-burst-rate", "P(source bursts per epoch)", "0.05");
  cli.add_option("fault-burst-mult", "burst injection multiplier", "4");
}

FaultSpec fault_spec_from_cli(const CliParser& cli) {
  FaultSpec spec;
  spec.enabled = cli.get_flag("faults");
  spec.seed = cli.get_uint("fault-seed");
  spec.window = cli.get_uint("fault-window");
  spec.link_stall_rate = cli.get_double("fault-link-rate");
  spec.link_stall_cycles = cli.get_uint("fault-link-cycles");
  spec.credit_stall_rate = cli.get_double("fault-credit-rate");
  spec.credit_stall_cycles = cli.get_uint("fault-credit-cycles");
  spec.churn_rate = cli.get_double("fault-churn-rate");
  spec.burst_rate = cli.get_double("fault-burst-rate");
  spec.burst_multiplier = cli.get_double("fault-burst-mult");
  return spec;
}

}  // namespace wormsched::validate
