// Runtime auditor for the paper's ERR invariants.
//
// Subscribes to ErrPolicy's opportunity stream (one ErrOpportunity record
// per completed service opportunity) and re-derives, outside the policy's
// own arithmetic, every bound the paper proves:
//
//   * Allowance arithmetic — A_i(r) = w_i(1 + MaxSC(r-1)) - SC_i(r-1)
//     cross-checked against the auditor's independently tracked SC, and
//     the MaxSC round snapshots replayed (monotone within a round, carried
//     exactly across rounds, reset after idle when configured).
//   * Lemma 1 / Corollary 1 — 0 <= SC_i and, in the weighted-general
//     form, SC_i < m where m is the largest single charge actually served
//     so far (for unit-flit packets this is the paper's SC_i <= m - 1);
//     allowances stay >= w_i (> 0, the lemma's statement).
//   * Theorem 2 — over every window of n consecutive rounds a flow stays
//     active, its service telescopes to
//     w_i(n + sum MaxSC) + SC(end) - SC(start-1); the auditor checks both
//     the exact telescoped identity and the paper's +/- m bound.
//   * Theorem 3 — a running fairness-measure accumulator: for each pair
//     of concurrently-backlogged flows it tracks min/max of the
//     weight-normalized cumulative-service difference; the spread (the
//     paper's FM) must stay < fm_bound_factor * m.  Pair windows start at
//     the later flow's first audited opportunity (conservative: never
//     wider than the paper's continuously-backlogged interval).
//
// Violations go to an AuditLog with full context (round, flow, values):
// abort-on-first in Debug, counted in Release.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/err.hpp"
#include "validate/violation.hpp"

namespace wormsched::validate {

struct ErrAuditorConfig {
  /// Mirrors ErrConfig::reset_on_idle: after the active set empties the
  /// next round's MaxSC snapshot is expected to be 0 instead of carried.
  bool reset_on_idle = false;
  /// Theorem 3 bound: FM < fm_bound_factor * m (the paper proves 3m).
  double fm_bound_factor = 3.0;
  /// Pairwise FM tracking is O(flows) per opportunity; above this many
  /// flows the Theorem 3 accumulator is skipped (everything else runs).
  std::size_t fm_pair_limit = 128;
  /// Floating-point slack for the exact identities.
  double epsilon = 1e-6;
};

class ErrAuditor {
 public:
  ErrAuditor(std::size_t num_flows, const ErrAuditorConfig& config,
             AuditLog& log);

  /// Installs this auditor as `policy`'s opportunity listener.
  void attach(core::ErrPolicy& policy);

  /// Feed one opportunity record (use directly when the listener slot is
  /// shared or records come from a replay).
  void on_opportunity(const core::ErrOpportunity& record);

  /// --- Summary ---------------------------------------------------------
  [[nodiscard]] std::uint64_t opportunities() const { return seen_; }
  /// Largest single charge observed — the paper's m (Def. 2, served).
  [[nodiscard]] double m() const { return m_; }
  [[nodiscard]] double max_surplus_seen() const { return max_sc_seen_; }
  /// Largest pairwise fairness measure observed (0 until two flows have
  /// overlapped).  Theorem 3 says this stays < fm_bound_factor * m.
  [[nodiscard]] double max_fairness_measure() const { return max_fm_; }

 private:
  struct FlowTrack {
    bool sc_known = false;   // auditor has a trusted SC for this flow
    double sc = 0.0;         // that SC (post-reset value of the last record)
    bool streak_live = false;
    std::size_t last_round = 0;
    // Theorem 2 window accumulators over the live streak.
    std::size_t streak_len = 0;
    double streak_sent = 0.0;
    double streak_prev_max = 0.0;
    double sc_before_first = 0.0;
    // Weight-normalized cumulative service (Theorem 3 coordinate).
    double ncum = 0.0;
  };
  struct PairTrack {
    double base = 0.0;  // normalized-difference origin at window start
    double dmin = 0.0;
    double dmax = 0.0;
  };

  void check_round_bookkeeping(const core::ErrOpportunity& rec,
                               double sc_pre_reset);
  void check_lemma1(const core::ErrOpportunity& rec, double sc_before,
                    double sc_pre_reset);
  void check_theorem2(const core::ErrOpportunity& rec, FlowTrack& track,
                      double sc_pre_reset);
  void check_theorem3(const core::ErrOpportunity& rec, FlowTrack& track);
  void drop_pairs_of(std::uint32_t flow);

  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t a,
                                              std::uint32_t b) {
    return a < b ? (static_cast<std::uint64_t>(a) << 32) | b
                 : (static_cast<std::uint64_t>(b) << 32) | a;
  }

  ErrAuditorConfig config_;
  AuditLog& log_;
  std::vector<FlowTrack> flows_;
  std::map<std::uint64_t, PairTrack> pairs_;

  // Round replay state.
  std::size_t cur_round_ = 0;
  std::size_t first_seen_round_ = 0;  // possibly joined mid-round
  double round_max_sc_ = 0.0;  // running max of pre-reset SC this round
  double round_prev_snapshot_ = 0.0;  // PreviousMaxSC fixed for the round
  bool idle_reset_pending_ = false;

  // Summary.
  std::uint64_t seen_ = 0;
  double m_ = 0.0;
  double max_sc_seen_ = 0.0;
  double max_fm_ = 0.0;
};

}  // namespace wormsched::validate
