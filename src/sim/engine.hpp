// Cycle-driven simulation kernel.
//
// All experiments in the paper are flit-clocked: the output resource moves
// at most one flit per cycle, and packet arrivals land on cycle boundaries.
// The kernel therefore combines
//   * an event calendar (min-heap) for sparse happenings — packet arrivals,
//     phase changes such as "stop injection after 10,000 cycles" — and
//   * a tick list for dense per-cycle components — schedulers draining one
//     flit per cycle, router pipelines.
//
// Within one cycle the order is deterministic: all events due at the cycle
// fire first (FIFO among equals), then components tick in registration
// order.  Determinism here is what makes every figure bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace wormsched::sim {

/// A component ticked once per simulated cycle.
class Component {
 public:
  virtual ~Component() = default;

  /// Performs this component's work for cycle `now`.
  virtual void tick(Cycle now) = 0;

  /// True when the component has no pending work.  run_until_idle() stops
  /// once every component is idle and the calendar is empty, and *skips*
  /// whole idle stretches to the next calendar event — so a component
  /// whose tick() still has side effects must not report idle.
  [[nodiscard]] virtual bool idle() const { return true; }
};

class Engine {
 public:
  using EventFn = std::function<void(Cycle)>;

  Engine() = default;
  /// Starts the clock at `start_cycle` instead of 0 — the restore path:
  /// an engine resuming a checkpointed run continues from the snapshot's
  /// cycle, so schedule_at/run_until arguments keep their absolute
  /// meaning across the restore.
  explicit Engine(Cycle start_cycle) : now_(start_cycle) {}

  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedules `fn` to run at cycle `when` (>= now).  Events scheduled for
  /// the same cycle run in scheduling order.
  void schedule_at(Cycle when, EventFn fn);
  void schedule_after(Cycle delay, EventFn fn);

  /// Registers a per-cycle component.  Components tick after the cycle's
  /// events, in registration order.  The engine does not own components.
  void add_component(Component& component);

  /// Executes one full cycle (events then ticks) and advances the clock.
  void step();

  /// Runs cycles [now, end).
  void run_until(Cycle end);

  /// Runs until the calendar is empty and all components are idle, or
  /// until `max_cycle`.  Returns the cycle at which the run stopped.
  /// While every component is idle the clock jumps directly to the next
  /// calendar event (or to `max_cycle`) instead of stepping cycle by
  /// cycle; events still fire at their exact scheduled cycles.
  Cycle run_until_idle(Cycle max_cycle = kCycleMax);

  [[nodiscard]] std::size_t pending_events() const { return calendar_.size(); }

 private:
  struct Event {
    Cycle when;
    std::uint64_t sequence;  // tie-break: FIFO within a cycle
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void run_due_events();

  Cycle now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> calendar_;
  std::vector<Component*> components_;
};

}  // namespace wormsched::sim
