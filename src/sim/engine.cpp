#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace wormsched::sim {

void Engine::schedule_at(Cycle when, EventFn fn) {
  WS_CHECK_MSG(when >= now_, "event scheduled in the past");
  calendar_.push(Event{when, next_sequence_++, std::move(fn)});
}

void Engine::schedule_after(Cycle delay, EventFn fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::add_component(Component& component) {
  components_.push_back(&component);
}

void Engine::run_due_events() {
  while (!calendar_.empty() && calendar_.top().when == now_) {
    // Copy out before pop: the handler may schedule new events.
    EventFn fn = calendar_.top().fn;
    calendar_.pop();
    fn(now_);
  }
}

void Engine::step() {
  run_due_events();
  for (Component* c : components_) c->tick(now_);
  ++now_;
}

void Engine::run_until(Cycle end) {
  while (now_ < end) step();
}

Cycle Engine::run_until_idle(Cycle max_cycle) {
  while (now_ < max_cycle) {
    bool all_idle = true;
    for (const Component* c : components_) {
      if (!c->idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) {
      if (calendar_.empty()) break;
      // Idle skip: nothing dense can make progress, so jump straight to
      // the next calendar event instead of ticking idle components cycle
      // by cycle.  idle() is a contract here — a component reporting idle
      // while its tick still has side effects would miss cycles.
      const Cycle next = calendar_.top().when;
      if (next >= max_cycle) {
        now_ = max_cycle;
        break;
      }
      now_ = next;  // the step below fires the event at its exact cycle
    }
    step();
  }
  return now_;
}

}  // namespace wormsched::sim
