#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace wormsched::sim {

void Engine::schedule_at(Cycle when, EventFn fn) {
  WS_CHECK_MSG(when >= now_, "event scheduled in the past");
  calendar_.push(Event{when, next_sequence_++, std::move(fn)});
}

void Engine::schedule_after(Cycle delay, EventFn fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::add_component(Component& component) {
  components_.push_back(&component);
}

void Engine::run_due_events() {
  while (!calendar_.empty() && calendar_.top().when == now_) {
    // Copy out before pop: the handler may schedule new events.
    EventFn fn = calendar_.top().fn;
    calendar_.pop();
    fn(now_);
  }
}

void Engine::step() {
  run_due_events();
  for (Component* c : components_) c->tick(now_);
  ++now_;
}

void Engine::run_until(Cycle end) {
  while (now_ < end) step();
}

Cycle Engine::run_until_idle(Cycle max_cycle) {
  while (now_ < max_cycle) {
    const bool events_pending = !calendar_.empty();
    bool all_idle = true;
    for (const Component* c : components_) {
      if (!c->idle()) {
        all_idle = false;
        break;
      }
    }
    if (!events_pending && all_idle) break;
    step();
  }
  return now_;
}

}  // namespace wormsched::sim
