// Per-stage perf counters for the simulation kernel.
//
// Answers "where do the wall-clock cycles go?" for one network tick:
// wire delivery, NIC injection, the router pipeline stages (RC, VA +
// occupancy charging, SA/ST) and the cycle-end observer each accumulate
// timestamp-counter ticks while a PerfCounters sink is attached.
//
// Cost model, in order of decreasing certainty:
//   * compiled out (WORMSCHED_PERF_COUNTERS undefined) — the scoped
//     timers are empty classes; zero code on the hot path;
//   * compiled in, no sink attached (the default at runtime) — one
//     pointer test per stage;
//   * sink attached — two timestamp reads per stage, paid only by the
//     instrumented run bench_perf_kernel uses for the stage breakdown,
//     never by the timed comparison runs.
//
// Counts are raw TSC ticks (x86 rdtsc / arm cntvct), not cycles of any
// fixed frequency: compare shares within one run, not ticks across
// machines.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace wormsched::metrics {

#if defined(WORMSCHED_PERF_COUNTERS)
inline constexpr bool kPerfCountersCompiled = true;
#else
inline constexpr bool kPerfCountersCompiled = false;
#endif

enum class Stage : std::uint8_t {
  kWireDelivery = 0,  // flit + credit delivery (incl. quarantine release)
  kNicInject,         // source-NIC flit injection
  kRouteCompute,      // RC: routing fresh head flits, raising requests
  kVcAlloc,           // VA: output binding + batched occupancy charging
  kSwitchTraversal,   // SA/ST: per-port flit movement + tail handling
  kObserver,          // cycle-end observer (auditors)
};
inline constexpr std::size_t kNumStages = 6;

[[nodiscard]] inline const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kWireDelivery: return "wire_delivery";
    case Stage::kNicInject: return "nic_inject";
    case Stage::kRouteCompute: return "route_compute";
    case Stage::kVcAlloc: return "vc_alloc";
    case Stage::kSwitchTraversal: return "switch_traversal";
    case Stage::kObserver: return "observer";
  }
  return "?";
}

[[nodiscard]] inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class PerfCounters {
 public:
  struct StageTotal {
    std::uint64_t ticks = 0;  // accumulated timestamp-counter ticks
    std::uint64_t calls = 0;  // scoped-timer activations
  };

  void add(Stage s, std::uint64_t ticks) {
    StageTotal& t = totals_[static_cast<std::size_t>(s)];
    t.ticks += ticks;
    ++t.calls;
  }

  [[nodiscard]] const StageTotal& total(Stage s) const {
    return totals_[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] std::uint64_t grand_total_ticks() const {
    std::uint64_t sum = 0;
    for (const StageTotal& t : totals_) sum += t.ticks;
    return sum;
  }

  void reset() { totals_ = {}; }

 private:
  std::array<StageTotal, kNumStages> totals_{};
};

/// RAII stage timer.  All members are compiled away when the layer is
/// off, so call sites stay unconditional.
class ScopedStageTimer {
 public:
  ScopedStageTimer([[maybe_unused]] PerfCounters* counters,
                   [[maybe_unused]] Stage stage) {
#if defined(WORMSCHED_PERF_COUNTERS)
    counters_ = counters;
    stage_ = stage;
    if (counters_ != nullptr) start_ = now_ticks();
#endif
  }
  ~ScopedStageTimer() {
#if defined(WORMSCHED_PERF_COUNTERS)
    if (counters_ != nullptr) counters_->add(stage_, now_ticks() - start_);
#endif
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
#if defined(WORMSCHED_PERF_COUNTERS)
  PerfCounters* counters_ = nullptr;
  Stage stage_ = Stage::kWireDelivery;
  std::uint64_t start_ = 0;
#endif
};

}  // namespace wormsched::metrics
