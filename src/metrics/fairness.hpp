// Fairness measures (paper Sec. 4.2, Defs. 1-3; Figs. 4 and 6).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "metrics/activity.hpp"
#include "metrics/service_log.hpp"

namespace wormsched::metrics {

/// FM(t1, t2): the maximum |Sent_i - Sent_j| in flits over all pairs of
/// flows active throughout [t1, t2) (Def. 1).  Returns 0 when fewer than
/// two flows qualify.
[[nodiscard]] Flits fairness_measure(const ServiceLog& log,
                                     const ActivityTracker& activity,
                                     Cycle t1, Cycle t2);

/// The Fig. 6 statistic: FM averaged over `num_intervals` random intervals
/// drawn uniformly from [0, horizon).  Intervals with fewer than two
/// qualifying flows are redrawn (up to a bounded number of attempts).
/// Result is in flits; multiply by the flit size for the paper's bytes.
[[nodiscard]] double average_relative_fairness(const ServiceLog& log,
                                               const ActivityTracker& activity,
                                               Cycle horizon,
                                               std::size_t num_intervals,
                                               Rng& rng);

/// Exhaustive FM maximization over a set of boundary instants (Lemma 2:
/// the global FM is attained on service-opportunity boundaries).  O(k^2)
/// pairs — for property tests on short runs, not for the 4M-cycle figures.
[[nodiscard]] Flits max_fairness_measure(const ServiceLog& log,
                                         const ActivityTracker& activity,
                                         const std::vector<Cycle>& boundaries);

}  // namespace wormsched::metrics
