#include "metrics/activity.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::metrics {

ActivityTracker::ActivityTracker(std::size_t num_flows)
    : windows_(num_flows), currently_active_(num_flows, false) {}

void ActivityTracker::record(Cycle now, FlowId flow, bool active) {
  WS_CHECK(!finished_);
  const std::size_t i = flow.index();
  if (active == currently_active_[i]) return;
  if (active) {
    windows_[i].push_back(Window{now, kCycleMax});
  } else {
    WS_CHECK(!windows_[i].empty());
    windows_[i].back().end = now;
  }
  currently_active_[i] = active;
}

void ActivityTracker::finish(Cycle end) {
  WS_CHECK(!finished_);
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (currently_active_[i]) {
      windows_[i].back().end = end;
      currently_active_[i] = false;
    }
  }
  finished_ = true;
}

bool ActivityTracker::active_throughout(FlowId flow, Cycle t1, Cycle t2) const {
  WS_CHECK_MSG(finished_, "query before finish()");
  WS_CHECK(t1 <= t2);
  if (t1 == t2) return true;
  const auto& windows = windows_[flow.index()];
  // Find the last window starting at or before t1.
  const auto it = std::upper_bound(
      windows.begin(), windows.end(), t1,
      [](Cycle t, const Window& w) { return t < w.start; });
  if (it == windows.begin()) return false;
  const Window& w = *(it - 1);
  return w.start <= t1 && t2 <= w.end;
}

void ActivityTracker::save(SnapshotWriter& w) const {
  w.u64(windows_.size());
  for (const auto& windows : windows_)
    save_sequence(w, windows, [](SnapshotWriter& o, const Window& win) {
      o.u64(win.start);
      o.u64(win.end);
    });
  for (const bool b : currently_active_) w.b(b);
  w.b(finished_);
}

void ActivityTracker::restore(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != windows_.size())
    throw SnapshotError("activity tracker snapshot flow count mismatch");
  for (auto& windows : windows_)
    restore_sequence(r, windows, [](SnapshotReader& i) {
      Window win;
      win.start = i.u64();
      win.end = i.u64();
      return win;
    });
  for (std::size_t i = 0; i < currently_active_.size(); ++i)
    currently_active_[i] = r.b();
  finished_ = r.b();
}

}  // namespace wormsched::metrics
