// Windowed steady-state metrics for unbounded (soak) horizons.
//
// A soak run cannot keep per-packet logs: it needs O(1)-memory statistics
// plus a way to tell when the transient (cold queues, empty pipelines)
// has washed out so the reported steady-state numbers exclude it.  The
// tracker slices time into fixed-width cycle windows and derives each
// window's mean delay and throughput as *deltas* of the cumulative
// RunningStat sums — no samples are retained, so memory stays constant no
// matter how long the run is.
//
// Warm-up detection: the run is declared warmed up after `stable_windows`
// consecutive windows whose mean delay stays within `rel_tol` of the
// previous window's (windows with no departures never qualify).  From
// that point the steady-state accumulator aggregates window means, so
// `steady_mean_delay()` is the transient-free average the soak harness
// reports.
//
// The tracker is itself checkpointable: a soak segment restores it along
// with the network, so warm-up status and steady-state sums survive a
// checkpoint/restore boundary bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace wormsched::metrics {

struct WindowedConfig {
  /// Window width in cycles.
  Cycle window = 10'000;
  /// Consecutive stable windows required to declare warm-up complete.
  std::size_t stable_windows = 5;
  /// Relative tolerance for "stable": |mean - prev_mean| <= rel_tol * prev.
  double rel_tol = 0.10;
};

class SteadyStateTracker {
 public:
  explicit SteadyStateTracker(const WindowedConfig& config = {});

  /// Feeds the cumulative delay accumulator and delivery counters at cycle
  /// `now`.  Call once per tick (or less often); the tracker closes every
  /// window boundary crossed since the previous call.  `cumulative` must
  /// be the run-wide accumulator (monotone count/sum).
  void observe(Cycle now, const RunningStat& cumulative,
               std::uint64_t delivered_flits);

  [[nodiscard]] bool warmed_up() const { return warmed_up_; }
  /// Cycle at which warm-up was declared (0 while still in transient).
  [[nodiscard]] Cycle warmup_end() const { return warmup_end_; }
  [[nodiscard]] std::uint64_t windows_closed() const {
    return windows_closed_;
  }

  /// Mean packet delay across post-warm-up windows (weighted by each
  /// window's packet count).  0 before warm-up completes.
  [[nodiscard]] double steady_mean_delay() const;
  /// Mean delivered flits/cycle across post-warm-up windows.
  [[nodiscard]] double steady_throughput() const;
  /// Per-window mean-delay spread, for flatness assertions in tests.
  [[nodiscard]] const RunningStat& window_means() const {
    return window_means_;
  }

  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  void close_window(Cycle boundary, const RunningStat& cumulative,
                    std::uint64_t delivered_flits);

  Cycle window_;
  std::size_t stable_windows_;
  double rel_tol_;

  Cycle next_boundary_;
  std::uint64_t windows_closed_ = 0;

  // Cumulative totals at the last closed boundary (delta base).
  std::uint64_t count_at_boundary_ = 0;
  double sum_at_boundary_ = 0.0;
  std::uint64_t flits_at_boundary_ = 0;

  // Warm-up detection state.
  double prev_window_mean_ = 0.0;
  bool have_prev_window_ = false;
  std::size_t stable_run_ = 0;
  bool warmed_up_ = false;
  Cycle warmup_end_ = 0;

  // Steady-state aggregates (post-warm-up windows only).
  std::uint64_t steady_count_ = 0;
  double steady_sum_ = 0.0;
  std::uint64_t steady_flits_ = 0;
  Cycle steady_cycles_ = 0;
  RunningStat window_means_;
};

}  // namespace wormsched::metrics
