// Per-flow service accounting.
//
// The fairness analyses (paper Def. 1, Figs. 4 and 6) all reduce to
// queries of Sent_i(t1, t2): how many flits flow i transmitted in an
// interval.  The log records the cycle of every transmitted flit per flow
// (cycles are naturally sorted), so any interval query is two binary
// searches.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched {
class SnapshotReader;
class SnapshotWriter;
}  // namespace wormsched

namespace wormsched::metrics {

class ServiceLog final : public core::SchedulerObserver {
 public:
  explicit ServiceLog(std::size_t num_flows, Bytes flit_bytes = 8);

  void on_flit(Cycle now, const core::FlitEvent& flit) override;

  [[nodiscard]] std::size_t num_flows() const { return flit_cycles_.size(); }
  [[nodiscard]] Bytes flit_bytes() const { return flit_bytes_; }

  /// Flits sent by `flow` in the half-open interval [t1, t2).
  [[nodiscard]] Flits sent(FlowId flow, Cycle t1, Cycle t2) const;
  [[nodiscard]] Bytes sent_bytes(FlowId flow, Cycle t1, Cycle t2) const {
    return static_cast<Bytes>(sent(flow, t1, t2)) * flit_bytes_;
  }

  /// Lifetime totals.
  [[nodiscard]] Flits total(FlowId flow) const;
  [[nodiscard]] Bytes total_bytes(FlowId flow) const {
    return static_cast<Bytes>(total(flow)) * flit_bytes_;
  }
  [[nodiscard]] Flits grand_total() const;

  /// Checkpoint/restore (flow count must match; checked).
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  std::vector<std::vector<Cycle>> flit_cycles_;
  Bytes flit_bytes_;
};

}  // namespace wormsched::metrics
