#include "metrics/delay.hpp"

#include "common/assert.hpp"

namespace wormsched::metrics {

DelayStats::DelayStats(std::size_t num_flows)
    : per_flow_(num_flows),
      per_flow_quantiles_(num_flows, QuantileEstimator(1u << 18)) {}

void DelayStats::on_packet_departure(Cycle now, const core::Packet& packet) {
  WS_CHECK(now >= packet.arrival);
  const auto delay = static_cast<double>(now - packet.arrival);
  overall_.add(delay);
  per_flow_[packet.flow.index()].add(delay);
  quantiles_.add(delay);
  per_flow_quantiles_[packet.flow.index()].add(delay);
}

}  // namespace wormsched::metrics
