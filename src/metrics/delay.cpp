#include "metrics/delay.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::metrics {

namespace {

// Budget ~32 MiB (1<<22 doubles) of reservoir across all flows, but never
// below 512 samples per flow (quantiles degrade) nor above the historical
// 1<<18 (small-flow-count runs keep their old accuracy).
std::size_t per_flow_capacity(std::size_t num_flows) {
  const std::size_t share = (std::size_t{1} << 22) / std::max<std::size_t>(
                                                         1, num_flows);
  return std::clamp<std::size_t>(share, 512, std::size_t{1} << 18);
}

}  // namespace

DelayStats::DelayStats(std::size_t num_flows)
    : per_flow_(num_flows),
      flow_reservoir_capacity_(per_flow_capacity(num_flows)),
      per_flow_quantiles_(num_flows) {}

void DelayStats::on_packet_departure(Cycle now, const core::Packet& packet) {
  WS_CHECK(now >= packet.arrival);
  const auto delay = static_cast<double>(now - packet.arrival);
  overall_.add(delay);
  per_flow_[packet.flow.index()].add(delay);
  quantiles_.add(delay);
  auto& est = per_flow_quantiles_[packet.flow.index()];
  if (!est) est.emplace(flow_reservoir_capacity_);
  est->add(delay);
}

void DelayStats::save(SnapshotWriter& w) const {
  overall_.save(w);
  w.u64(per_flow_.size());
  for (const RunningStat& s : per_flow_) s.save(w);
  quantiles_.save(w);
  w.u64(flow_reservoir_capacity_);
  for (const auto& est : per_flow_quantiles_) {
    w.b(est.has_value());
    if (est) est->save(w);
  }
}

void DelayStats::restore(SnapshotReader& r) {
  overall_.restore(r);
  const std::uint64_t n = r.u64();
  if (n != per_flow_.size())
    throw SnapshotError("delay stats snapshot flow count mismatch");
  for (RunningStat& s : per_flow_) s.restore(r);
  quantiles_.restore(r);
  flow_reservoir_capacity_ = r.u64();
  for (auto& est : per_flow_quantiles_) {
    if (r.b()) {
      if (!est) est.emplace(flow_reservoir_capacity_);
      est->restore(r);
    } else {
      est.reset();
    }
  }
}

}  // namespace wormsched::metrics
