#include "metrics/service_log.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::metrics {

ServiceLog::ServiceLog(std::size_t num_flows, Bytes flit_bytes)
    : flit_cycles_(num_flows), flit_bytes_(flit_bytes) {
  WS_CHECK(num_flows > 0);
  WS_CHECK(flit_bytes > 0);
}

void ServiceLog::on_flit(Cycle now, const core::FlitEvent& flit) {
  auto& cycles = flit_cycles_[flit.flow.index()];
  WS_CHECK_MSG(cycles.empty() || cycles.back() <= now,
               "service log must be fed in time order");
  cycles.push_back(now);
}

Flits ServiceLog::sent(FlowId flow, Cycle t1, Cycle t2) const {
  WS_CHECK(t1 <= t2);
  const auto& cycles = flit_cycles_[flow.index()];
  const auto lo = std::lower_bound(cycles.begin(), cycles.end(), t1);
  const auto hi = std::lower_bound(lo, cycles.end(), t2);
  return static_cast<Flits>(hi - lo);
}

Flits ServiceLog::total(FlowId flow) const {
  return static_cast<Flits>(flit_cycles_[flow.index()].size());
}

Flits ServiceLog::grand_total() const {
  Flits total = 0;
  for (const auto& cycles : flit_cycles_)
    total += static_cast<Flits>(cycles.size());
  return total;
}

void ServiceLog::save(SnapshotWriter& w) const {
  w.u64(flit_cycles_.size());
  for (const auto& cycles : flit_cycles_)
    save_sequence(w, cycles, [](SnapshotWriter& o, Cycle c) { o.u64(c); });
  w.u64(flit_bytes_);
}

void ServiceLog::restore(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != flit_cycles_.size())
    throw SnapshotError("service log snapshot flow count mismatch");
  for (auto& cycles : flit_cycles_)
    restore_sequence(r, cycles, [](SnapshotReader& i) { return i.u64(); });
  flit_bytes_ = static_cast<Bytes>(r.u64());
}

}  // namespace wormsched::metrics
