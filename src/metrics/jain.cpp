#include "metrics/jain.hpp"

namespace wormsched::metrics {

double jain_index(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: vacuously equal
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace wormsched::metrics
