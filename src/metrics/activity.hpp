// Flow-activity tracking.
//
// The paper's fairness measure compares only flows that are *active*
// throughout the measured interval ("a flow is active when a packet
// belonging to it is in the middle of being dequeued, or its queue is not
// empty", Sec. 3).  The tracker stores each flow's activity as maximal
// [start, end) cycle windows, so "active throughout [t1, t2)" is one
// binary search.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace wormsched {
class SnapshotReader;
class SnapshotWriter;
}  // namespace wormsched

namespace wormsched::metrics {

class ActivityTracker {
 public:
  explicit ActivityTracker(std::size_t num_flows);

  /// Feeds one cycle's activity snapshot; must be called with
  /// non-decreasing `now`.
  void record(Cycle now, FlowId flow, bool active);

  /// Call once after the run so trailing windows are closed at `end`.
  void finish(Cycle end);

  /// True iff `flow` was active for every cycle of [t1, t2).
  [[nodiscard]] bool active_throughout(FlowId flow, Cycle t1, Cycle t2) const;

  [[nodiscard]] std::size_t num_flows() const { return windows_.size(); }

  /// Checkpoint/restore (flow count must match; checked).
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  struct Window {
    Cycle start;
    Cycle end;  // exclusive; kCycleMax while the window is still open
  };
  std::vector<std::vector<Window>> windows_;
  std::vector<bool> currently_active_;
  bool finished_ = false;
};

}  // namespace wormsched::metrics
