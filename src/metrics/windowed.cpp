#include "metrics/windowed.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::metrics {

SteadyStateTracker::SteadyStateTracker(const WindowedConfig& config)
    : window_(config.window),
      stable_windows_(config.stable_windows),
      rel_tol_(config.rel_tol),
      next_boundary_(config.window) {
  WS_CHECK_MSG(config.window > 0, "window width must be positive");
  WS_CHECK_MSG(config.stable_windows > 0, "need at least one stable window");
  WS_CHECK_MSG(config.rel_tol >= 0.0, "tolerance must be non-negative");
}

void SteadyStateTracker::observe(Cycle now, const RunningStat& cumulative,
                                 std::uint64_t delivered_flits) {
  while (now >= next_boundary_) {
    close_window(next_boundary_, cumulative, delivered_flits);
    next_boundary_ += window_;
  }
}

void SteadyStateTracker::close_window(Cycle boundary,
                                      const RunningStat& cumulative,
                                      std::uint64_t delivered_flits) {
  // Window aggregates as deltas of the cumulative totals: O(1) memory and
  // exact (sums of doubles subtract bit-deterministically).
  const std::uint64_t count = cumulative.count() - count_at_boundary_;
  const double sum = cumulative.sum() - sum_at_boundary_;
  const std::uint64_t flits = delivered_flits - flits_at_boundary_;
  count_at_boundary_ = cumulative.count();
  sum_at_boundary_ = cumulative.sum();
  flits_at_boundary_ = delivered_flits;
  ++windows_closed_;

  const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;

  if (!warmed_up_) {
    if (count > 0 && have_prev_window_) {
      const double tol = rel_tol_ * std::abs(prev_window_mean_);
      if (std::abs(mean - prev_window_mean_) <= tol) {
        if (++stable_run_ >= stable_windows_) {
          warmed_up_ = true;
          warmup_end_ = boundary;
        }
      } else {
        stable_run_ = 0;
      }
    } else if (count == 0) {
      stable_run_ = 0;  // an empty window is not evidence of steady state
    }
    if (count > 0) {
      prev_window_mean_ = mean;
      have_prev_window_ = true;
    }
    return;
  }

  steady_count_ += count;
  steady_sum_ += sum;
  steady_flits_ += flits;
  steady_cycles_ += window_;
  if (count > 0) window_means_.add(mean);
}

double SteadyStateTracker::steady_mean_delay() const {
  return steady_count_ > 0 ? steady_sum_ / static_cast<double>(steady_count_)
                           : 0.0;
}

double SteadyStateTracker::steady_throughput() const {
  return steady_cycles_ > 0 ? static_cast<double>(steady_flits_) /
                                  static_cast<double>(steady_cycles_)
                            : 0.0;
}

void SteadyStateTracker::save(SnapshotWriter& w) const {
  w.u64(window_);
  w.u64(stable_windows_);
  w.f64(rel_tol_);
  w.u64(next_boundary_);
  w.u64(windows_closed_);
  w.u64(count_at_boundary_);
  w.f64(sum_at_boundary_);
  w.u64(flits_at_boundary_);
  w.f64(prev_window_mean_);
  w.b(have_prev_window_);
  w.u64(stable_run_);
  w.b(warmed_up_);
  w.u64(warmup_end_);
  w.u64(steady_count_);
  w.f64(steady_sum_);
  w.u64(steady_flits_);
  w.u64(steady_cycles_);
  window_means_.save(w);
}

void SteadyStateTracker::restore(SnapshotReader& r) {
  window_ = r.u64();
  if (window_ == 0)
    throw SnapshotError("steady-state tracker snapshot has zero window");
  stable_windows_ = r.u64();
  rel_tol_ = r.f64();
  next_boundary_ = r.u64();
  windows_closed_ = r.u64();
  count_at_boundary_ = r.u64();
  sum_at_boundary_ = r.f64();
  flits_at_boundary_ = r.u64();
  prev_window_mean_ = r.f64();
  have_prev_window_ = r.b();
  stable_run_ = r.u64();
  warmed_up_ = r.b();
  warmup_end_ = r.u64();
  steady_count_ = r.u64();
  steady_sum_ = r.f64();
  steady_flits_ = r.u64();
  steady_cycles_ = r.u64();
  window_means_.restore(r);
}

}  // namespace wormsched::metrics
