// Packet-delay statistics (paper Fig. 5).
//
// Delay is "the number of cycles between the instant [a packet] is placed
// in the queue for scheduling, to the instant its last flit is dequeued".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched::metrics {

class DelayStats final : public core::SchedulerObserver {
 public:
  explicit DelayStats(std::size_t num_flows);

  void on_packet_departure(Cycle now, const core::Packet& packet) override;

  [[nodiscard]] const RunningStat& overall() const { return overall_; }
  [[nodiscard]] const RunningStat& flow(FlowId flow) const {
    return per_flow_[flow.index()];
  }
  [[nodiscard]] double quantile(double q) const {
    return quantiles_.quantile(q);
  }
  /// Per-flow delay quantile (0 for a flow that has seen no departures,
  /// matching QuantileEstimator's empty behaviour).
  [[nodiscard]] double flow_quantile(FlowId flow, double q) const {
    const auto& est = per_flow_quantiles_[flow.index()];
    return est ? est->quantile(q) : 0.0;
  }
  [[nodiscard]] std::size_t packets() const { return overall_.count(); }

  /// Checkpoint/restore (flow count must match; checked).  Reservoirs
  /// round-trip their RNG state, so a restored run samples identically.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  RunningStat overall_;
  std::vector<RunningStat> per_flow_;
  QuantileEstimator quantiles_;
  // Constructed on a flow's first departure: a run with 4096 flows must
  // not pay 4096 eager reservoirs, and the per-flow capacity shrinks as
  // the flow count grows so the whole set stays bounded (~32 MiB).
  std::size_t flow_reservoir_capacity_;
  std::vector<std::optional<QuantileEstimator>> per_flow_quantiles_;
};

/// Composite observer: fans a scheduler's notifications out to several
/// observers (the harness attaches a ServiceLog and a DelayStats at once).
class ObserverChain final : public core::SchedulerObserver {
 public:
  void add(core::SchedulerObserver& observer) {
    observers_.push_back(&observer);
  }

  void on_packet_arrival(Cycle now, const core::Packet& p) override {
    for (auto* o : observers_) o->on_packet_arrival(now, p);
  }
  void on_flit(Cycle now, const core::FlitEvent& f) override {
    for (auto* o : observers_) o->on_flit(now, f);
  }
  void on_packet_departure(Cycle now, const core::Packet& p) override {
    for (auto* o : observers_) o->on_packet_departure(now, p);
  }

 private:
  std::vector<core::SchedulerObserver*> observers_;
};

}  // namespace wormsched::metrics
