#include "metrics/fairness.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wormsched::metrics {

Flits fairness_measure(const ServiceLog& log, const ActivityTracker& activity,
                       Cycle t1, Cycle t2) {
  WS_CHECK(log.num_flows() == activity.num_flows());
  Flits min_sent = 0;
  Flits max_sent = 0;
  bool first = true;
  std::size_t qualifying = 0;
  for (std::size_t i = 0; i < log.num_flows(); ++i) {
    const FlowId flow(static_cast<FlowId::rep_type>(i));
    if (!activity.active_throughout(flow, t1, t2)) continue;
    ++qualifying;
    const Flits sent = log.sent(flow, t1, t2);
    if (first) {
      min_sent = max_sent = sent;
      first = false;
    } else {
      min_sent = std::min(min_sent, sent);
      max_sent = std::max(max_sent, sent);
    }
  }
  return qualifying >= 2 ? max_sent - min_sent : 0;
}

double average_relative_fairness(const ServiceLog& log,
                                 const ActivityTracker& activity,
                                 Cycle horizon, std::size_t num_intervals,
                                 Rng& rng) {
  WS_CHECK(horizon > 1);
  double sum = 0.0;
  std::size_t samples = 0;
  // Bounded redraws: a lightly loaded run may rarely have two flows active
  // through a random interval; give each sample a few attempts, then count
  // it as zero (matching "no unfairness observable").
  constexpr int kMaxAttempts = 16;
  for (std::size_t k = 0; k < num_intervals; ++k) {
    Flits fm = 0;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Cycle a = rng.uniform_u64(horizon);
      Cycle b = rng.uniform_u64(horizon);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      std::size_t qualifying = 0;
      for (std::size_t i = 0; i < log.num_flows(); ++i) {
        if (activity.active_throughout(FlowId(static_cast<FlowId::rep_type>(i)),
                                       a, b))
          ++qualifying;
      }
      if (qualifying < 2) continue;
      fm = fairness_measure(log, activity, a, b);
      break;
    }
    sum += static_cast<double>(fm);
    ++samples;
  }
  return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

Flits max_fairness_measure(const ServiceLog& log,
                           const ActivityTracker& activity,
                           const std::vector<Cycle>& boundaries) {
  Flits worst = 0;
  for (std::size_t a = 0; a < boundaries.size(); ++a) {
    for (std::size_t b = a + 1; b < boundaries.size(); ++b) {
      worst = std::max(
          worst, fairness_measure(log, activity, boundaries[a], boundaries[b]));
    }
  }
  return worst;
}

}  // namespace wormsched::metrics
