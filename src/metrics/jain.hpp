// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means
// perfectly equal allocations, 1/n means one participant has everything.
// Used by the network benches to condense per-source throughput vectors.
#pragma once

#include <span>

namespace wormsched::metrics {

[[nodiscard]] double jain_index(std::span<const double> allocations);

}  // namespace wormsched::metrics
